"""Property suite for the vectorized numpy kernels (repro.perf.npkernels).

Every kernel must equal its pure-python counterpart *exactly* — same
results (including dict insertion order), same rounds, messages, and
per-edge ledger traffic — on random CSR topologies and weights,
including the adversarial shapes the vectorization is most likely to
get wrong: isolated nodes, duplicate edge weights near the int64
scaling bounds, single-node graphs, and path graphs. The whole file
skips cleanly when the optional numpy extra is not installed.
"""

import random
from fractions import Fraction

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.congest.bellman_ford import bellman_ford  # noqa: E402
from repro.congest.bfs import build_bfs_tree  # noqa: E402
from repro.congest.broadcast import (  # noqa: E402
    broadcast_items,
    convergecast_aggregate,
)
from repro.congest.run import CongestRun  # noqa: E402
from repro.model.graph import WeightedGraph  # noqa: E402
from repro.perf import make_ledger_run  # noqa: E402
from repro.perf.fastpath import FastCongestRun  # noqa: E402
from repro.perf.npkernels import (  # noqa: E402
    INT64_LIMIT,
    NumpyCongestRun,
    NumpyTopology,
    apply_radius_growth,
    assert_int64_bounds,
    gather_out_edges,
    grow_radii,
    scale_fractions,
)

# ---------------------------------------------------------------------
# Graph strategies
# ---------------------------------------------------------------------

#: Weight pools: small ints with forced duplicates, and duplicates near
#: the int64 scaling bound (2^61 < 2^62 — topology compiles, but the
#: Bellman–Ford bound check must decline and fall back).
WEIGHT_POOLS = {
    "small": [1, 2, 2, 3, 7],
    "duplicate-large": [2 ** 61 - 1, 2 ** 61 - 1, 2 ** 60],
}


def _build_graph(shape, n, seed, pool_key):
    rng = random.Random(seed)
    pool = WEIGHT_POOLS[pool_key]
    nodes = [f"n{i:02d}" for i in range(n)]
    edges = {}

    def add(i, j):
        key = (min(i, j), max(i, j))
        if key not in edges:
            edges[key] = rng.choice(pool)

    if shape == "path":
        for i in range(n - 1):
            add(i, i + 1)
    elif shape == "isolated":
        # A connected core on the first n-2 nodes; the last two nodes
        # stay isolated (validate=False skips the connectivity check).
        core = max(1, n - 2)
        for i in range(1, core):
            add(i, rng.randrange(i))
    else:  # random connected: spanning tree + extra chords
        for i in range(1, n):
            add(i, rng.randrange(i))
        for _ in range(n):
            i, j = rng.sample(range(n), 2)
            add(i, j)
    return WeightedGraph(
        nodes,
        [(nodes[i], nodes[j], w) for (i, j), w in edges.items()],
        validate=False,
    )


@st.composite
def graphs(draw):
    shape = draw(st.sampled_from(["random", "path", "isolated"]))
    n = draw(st.integers(3, 20))
    seed = draw(st.integers(0, 10 ** 6))
    pool_key = draw(st.sampled_from(sorted(WEIGHT_POOLS)))
    return _build_graph(shape, n, seed, pool_key)


def _ledger_fp(run):
    return (
        run.rounds,
        run.messages,
        sorted(run.edge_messages.items(), key=repr),
        dict(run.phase_rounds),
    )


# ---------------------------------------------------------------------
# Primitive equality properties
# ---------------------------------------------------------------------


class TestPrimitiveEquality:
    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_bfs_matches_reference(self, graph):
        ref_run = CongestRun(graph)
        ref = build_bfs_tree(graph, run=ref_run)
        np_run = NumpyCongestRun(graph)
        fast = build_bfs_tree(graph, run=np_run)
        assert list(ref.parent.items()) == list(fast.parent.items())
        assert list(ref.depth_of.items()) == list(fast.depth_of.items())
        assert ref.root == fast.root and ref.depth == fast.depth
        assert _ledger_fp(ref_run) == _ledger_fp(np_run)

    @given(
        graphs(),
        st.integers(1, 3),
        st.sampled_from([None, 1, 3]),
        st.booleans(),
        st.integers(0, 10 ** 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_bellman_ford_matches_reference(
        self, graph, num_sources, max_iterations, use_blocked, seed
    ):
        rng = random.Random(seed)
        nodes = list(graph.nodes)
        picks = rng.sample(nodes, min(num_sources, len(nodes)))
        tags = ["A", "B", "A"]
        dists = [Fraction(0), Fraction(1, 2), Fraction(5, 3)]
        sources = {
            v: (dists[i % 3], tags[i % 3]) for i, v in enumerate(picks)
        }
        blocked = None
        if use_blocked:
            rest = [v for v in nodes if v not in sources]
            if rest:
                blocked = frozenset(rng.sample(rest, 1))
        ref_run = CongestRun(graph)
        ref = bellman_ford(
            graph, sources, ref_run,
            blocked=blocked, max_iterations=max_iterations,
        )
        np_run = NumpyCongestRun(graph)
        fast = bellman_ford(
            graph, sources, np_run,
            blocked=blocked, max_iterations=max_iterations,
        )
        assert list(ref.dist.items()) == list(fast.dist.items())
        assert list(ref.tag.items()) == list(fast.tag.items())
        assert list(ref.parent.items()) == list(fast.parent.items())
        assert ref.iterations == fast.iterations
        assert ref.stabilized == fast.stabilized
        assert _ledger_fp(ref_run) == _ledger_fp(np_run)

    @given(graphs(), st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_broadcast_and_convergecast_match_reference(
        self, graph, num_items
    ):
        items = [("item", i) for i in range(num_items)]
        ref_run = CongestRun(graph)
        ref_tree = build_bfs_tree(graph, run=ref_run)
        ref_out = broadcast_items(ref_tree, items, ref_run)
        np_run = NumpyCongestRun(graph)
        np_tree = build_bfs_tree(graph, run=np_run)
        np_out = broadcast_items(np_tree, items, np_run)
        assert ref_out == np_out
        assert _ledger_fp(ref_run) == _ledger_fp(np_run)
        # Convergecast with a *non-commutative* combine: nested tuples
        # record the exact combine order, so any schedule divergence
        # fails loudly, not just aggregate-value differences.
        values = {v: i for i, v in enumerate(graph.nodes)}
        combine = lambda a, b: (a, b)  # noqa: E731
        ref_acc = convergecast_aggregate(
            ref_tree, dict(values), combine, ref_run
        )
        np_acc = convergecast_aggregate(
            np_tree, dict(values), combine, np_run
        )
        assert ref_acc == np_acc
        assert _ledger_fp(ref_run) == _ledger_fp(np_run)

    def test_single_node_graph(self):
        graph = WeightedGraph(["only"], [], validate=False)
        ref_run = CongestRun(graph)
        ref_tree = build_bfs_tree(graph, run=ref_run)
        np_run = NumpyCongestRun(graph)
        np_tree = build_bfs_tree(graph, run=np_run)
        assert ref_tree.root == np_tree.root == "only"
        assert ref_tree.depth == np_tree.depth == 0
        assert broadcast_items(np_tree, [("x", 1)], np_run) == [("x", 1)]
        assert (
            convergecast_aggregate(np_tree, {"only": 7}, max, np_run) == 7
        )
        assert _ledger_fp(ref_run) == _ledger_fp(np_run)

    def test_unscalable_edge_weight_falls_back_exactly(self):
        # Float weights cannot enter the int64 grid: the kernel must
        # decline and the compiled python branch must produce the same
        # execution as reference.
        graph = _build_graph("random", 10, 99, "small")
        weight = lambda u, v: 1.5  # noqa: E731
        sources = {graph.nodes[0]: (Fraction(0), "A")}
        ref_run = CongestRun(graph)
        ref = bellman_ford(graph, sources, ref_run, edge_weight=weight)
        np_run = NumpyCongestRun(graph)
        fast = bellman_ford(graph, sources, np_run, edge_weight=weight)
        assert list(ref.dist.items()) == list(fast.dist.items())
        assert ref.tag == fast.tag and ref.parent == fast.parent
        assert _ledger_fp(ref_run) == _ledger_fp(np_run)

    def test_equal_repr_distinct_tags_share_a_rank(self):
        # Two distinct tag objects with equal reprs must tie-break as
        # equals, exactly like the reference's repr-string comparison.
        class Tag:
            def __init__(self, name, salt):
                self.name = name
                self.salt = salt

            def __repr__(self):
                return f"Tag({self.name})"

            def __hash__(self):
                return hash((self.name, self.salt))

            def __eq__(self, other):
                return (
                    isinstance(other, Tag)
                    and (self.name, self.salt) == (other.name, other.salt)
                )

        graph = _build_graph("path", 8, 3, "small")
        t1, t2 = Tag("x", 1), Tag("x", 2)
        sources = {
            graph.nodes[0]: (Fraction(0), t1),
            graph.nodes[-1]: (Fraction(0), t2),
        }
        ref = bellman_ford(graph, sources, CongestRun(graph))
        fast = bellman_ford(graph, sources, NumpyCongestRun(graph))
        assert ref.dist == fast.dist
        assert ref.tag == fast.tag
        assert ref.parent == fast.parent


# ---------------------------------------------------------------------
# Scaling and overflow guards
# ---------------------------------------------------------------------


class TestScalingGuards:
    def test_scale_fractions_int_passthrough(self):
        assert scale_fractions([1, 2, 3]) == ([1, 2, 3], 1)

    def test_scale_fractions_lcm(self):
        scaled = scale_fractions([Fraction(1, 2), Fraction(1, 3), 5])
        assert scaled == ([3, 2, 30], 6)

    def test_scale_fractions_rejects_floats(self):
        assert scale_fractions([1, 2.5]) is None

    def test_scale_fractions_rejects_giant_denominators(self):
        assert scale_fractions([Fraction(1, 2 ** 62)]) is None

    def test_scale_fractions_rejects_out_of_bound_values(self):
        assert scale_fractions([2 ** 62]) is None
        assert scale_fractions([Fraction(2 ** 61, 1), Fraction(1, 4)]) is None

    def test_assert_int64_bounds(self):
        assert_int64_bounds(np.array([2 ** 62 - 1, -(2 ** 62 - 1)]), "ok")
        with pytest.raises(AssertionError, match="int64 bound"):
            assert_int64_bounds(np.array([2 ** 62]), "ctx")

    def test_topology_rejects_out_of_bound_weights(self):
        graph = WeightedGraph(
            ["a", "b"], [("a", "b", 2 ** 62)], validate=False
        )
        with pytest.raises(OverflowError):
            NumpyCongestRun(graph)
        with pytest.raises(OverflowError):
            make_ledger_run("numpy", graph)
        # auto degrades to flatarray instead of failing.
        spec = {
            "name": "auto",
            "params": {"threshold": 1, "numpy_threshold": 1},
        }
        assert type(make_ledger_run(spec, graph)) is FastCongestRun

    def test_near_bound_weights_decline_and_fall_back(self):
        # 2^61 weights compile (below the 2^62 gate) but the BF bound
        # check (n-1)·max_w must decline; conformance still holds via
        # the fallback branch.
        graph = _build_graph("path", 6, 5, "duplicate-large")
        sources = {graph.nodes[0]: (Fraction(0), "A")}
        ref_run = CongestRun(graph)
        ref = bellman_ford(graph, sources, ref_run)
        np_run = NumpyCongestRun(graph)
        fast = bellman_ford(graph, sources, np_run)
        assert list(ref.dist.items()) == list(fast.dist.items())
        assert _ledger_fp(ref_run) == _ledger_fp(np_run)


# ---------------------------------------------------------------------
# Array kernels against naive python
# ---------------------------------------------------------------------


class TestArrayKernels:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_gather_out_edges_matches_naive(self, seed):
        graph = _build_graph("random", 12, seed, "small")
        npc = NumpyTopology(graph)
        rng = random.Random(seed)
        ranks = np.asarray(
            sorted(rng.sample(range(len(npc.order)), rng.randint(0, 6))),
            dtype=np.int64,
        )
        positions, senders, targets = gather_out_edges(
            npc.indptr, npc.indices, ranks
        )
        naive = []
        for r in ranks.tolist():
            for pos in range(int(npc.indptr[r]), int(npc.indptr[r + 1])):
                naive.append((pos, r, int(npc.indices[pos])))
        assert list(zip(
            positions.tolist(), senders.tolist(), targets.tolist()
        )) == naive

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_grow_radii_matches_python_loop(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 16)
        leftover = np.asarray(
            [rng.randint(0, 1000) for _ in range(n)], dtype=np.int64
        )
        dist = np.asarray(
            [rng.randint(0, 1000) for _ in range(n)], dtype=np.int64
        )
        grow = np.asarray(
            [rng.random() < 0.5 for _ in range(n)], dtype=bool
        )
        cand = np.asarray(
            [rng.random() < 0.5 for _ in range(n)], dtype=bool
        )
        mu = rng.randint(0, 1000)
        new_leftover, absorbed = grow_radii(leftover, grow, dist, cand, mu)
        for i in range(n):
            expected = leftover[i] + mu if grow[i] else leftover[i]
            if cand[i] and dist[i] <= mu:
                assert absorbed[i]
                expected = mu - dist[i]
            else:
                assert not absorbed[i]
            assert new_leftover[i] == expected

    def test_grow_radii_rejects_out_of_bound_mu(self):
        one = np.zeros(1, dtype=np.int64)
        with pytest.raises(AssertionError, match="int64 bound"):
            grow_radii(one, one.astype(bool), one, one.astype(bool),
                       INT64_LIMIT)

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_apply_radius_growth_matches_python_loops(self, seed):
        rng = random.Random(seed)
        graph = _build_graph("random", 10, seed, "small")
        nodes = list(graph.nodes)
        npc = NumpyCongestRun(graph).npc
        covered = rng.sample(nodes, rng.randint(1, 6))
        leftover = {
            v: Fraction(rng.randint(0, 9), rng.choice([1, 2, 3]))
            for v in covered
        }
        owner = {v: (v if v in covered else None) for v in nodes}
        parent = {v: None for v in nodes}
        sources = {v: None for v in covered if rng.random() < 0.8}
        reached = rng.sample(nodes, rng.randint(0, len(nodes)))
        tree_dist = {
            v: Fraction(rng.randint(0, 9), rng.choice([1, 2, 3]))
            for v in reached
        }
        tree_owner = {v: rng.choice(covered) for v in nodes}
        tree_parent = {v: rng.choice(nodes) for v in nodes}
        mu = Fraction(rng.randint(0, 9), rng.choice([1, 2, 3]))

        # Reference loops on copies.
        exp_leftover = dict(leftover)
        exp_owner = dict(owner)
        exp_parent = dict(parent)
        for x, lo in list(exp_leftover.items()):
            if exp_owner[x] is not None and x in sources:
                exp_leftover[x] = lo + mu
        for x, d in tree_dist.items():
            if x in sources:
                continue
            if d <= mu:
                exp_owner[x] = tree_owner[x]
                exp_parent[x] = tree_parent[x]
                exp_leftover[x] = mu - d

        assert apply_radius_growth(
            npc, leftover, owner, parent, sources,
            tree_owner, tree_parent, tree_dist, mu,
        )
        assert list(leftover.items()) == list(exp_leftover.items())
        assert owner == exp_owner
        assert parent == exp_parent

    def test_apply_radius_growth_declines_unscalable(self):
        graph = _build_graph("path", 4, 1, "small")
        npc = NumpyCongestRun(graph).npc
        nodes = list(graph.nodes)
        leftover = {nodes[0]: 0.5}  # float: not scalable
        assert not apply_radius_growth(
            npc, leftover, {v: None for v in nodes},
            {v: None for v in nodes}, {}, {}, {}, {}, Fraction(1),
        )
        assert leftover == {nodes[0]: 0.5}  # untouched on decline


# ---------------------------------------------------------------------
# Ledger bridge
# ---------------------------------------------------------------------


class TestNumpyCongestRun:
    def test_counter_materialization_is_lazy_and_complete(self):
        graph = _build_graph("path", 4, 1, "small")
        run = NumpyCongestRun(graph)
        npc = run.npc
        run.tick()
        run.charge_eids(np.asarray([0, 0, 1], dtype=np.int64))
        run.charge_unique_eids(np.asarray([2], dtype=np.int64))
        counter = run.edge_messages
        assert counter[npc.canon_edges[0]] == 2
        assert counter[npc.canon_edges[1]] == 1
        assert counter[npc.canon_edges[2]] == 1
        # Folding is idempotent: a second read adds nothing.
        assert run.edge_messages[npc.canon_edges[0]] == 2

    def test_rejects_foreign_numpy_topology(self):
        graph_a = _build_graph("path", 4, 1, "small")
        graph_b = _build_graph("path", 4, 2, "small")
        foreign = NumpyCongestRun(graph_b).npc
        with pytest.raises(ValueError):
            NumpyCongestRun(graph_a, npc=foreign)

    def test_fastpath_branches_still_engage(self):
        # NumpyCongestRun must look like a FastCongestRun to every
        # primitive without a numpy branch, but the pure-python
        # compilation is deferred until such a branch actually asks.
        graph = _build_graph("random", 8, 2, "small")
        run = NumpyCongestRun(graph)
        assert isinstance(run, FastCongestRun)
        assert run._compiled is None  # lazy until first fallback use
        compiled = run.compiled
        assert compiled.graph is graph
        assert run.compiled is compiled  # built once, then cached
