"""Cross-backend conformance: every engine computes the same execution.

The reference engine is the regression-pinned semantic baseline; this
suite proves the ``flatarray``, ``sharded``, and (when the optional
extra is installed) ``numpy`` engines reproduce it *exactly* — rounds,
ledger traffic (messages and per-edge counters), network-model
statistics, trace event streams, and final program states — across the
full matrix of built-in NodeProgram × graph family × network model
combinations. The ``numpy`` rows carry a skip marker keyed on the
registry, so the dependency-free environment skips them cleanly.

CI runs this file once per backend (``-k flatarray`` / ``-k reference``)
in the conformance matrix; the ids are structured so the filter works.
"""

import random

import pytest

from repro.congest.simulator import (
    EchoBroadcast,
    FloodMaxLeaderElection,
    Simulator,
)
from repro.engine.registry import GRAPH_FAMILIES
from repro.netmodel import TraceRecorder
from repro.simbackend import AutoBackend, ShardedBackend, numpy_tier_available

requires_numpy = pytest.mark.skipif(
    not numpy_tier_available(),
    reason="optional numpy extra not installed",
)

#: The non-reference engines every matrix case runs against.
MATRIX_BACKENDS = [
    "flatarray",
    "sharded",
    "auto",
    pytest.param("numpy", marks=requires_numpy),
]


def _engine_for(backend):
    """Instantiate the matrix engines that need construction parameters.

    ``auto`` is forced to its flat-array choice (threshold=1): at these
    graph sizes the default heuristic would pick reference and the case
    would only re-test the baseline against itself. The default-choice
    path is covered by tests/test_perf.py.
    """
    if backend == "sharded":
        return ShardedBackend(num_shards=2)
    if backend == "auto":
        return AutoBackend(threshold=1)
    return backend

#: Small instances of representative graph families: the four seed
#: families plus ``powerlaw`` standing in for the workload-suite
#: additions — its skewed degrees give the engines the topology shape
#: (hub fan-out, uneven per-node message load) the others lack. The
#: full family catalog is exercised by the metamorphic property suite
#: (tests/test_properties_workloads.py); pinning all of it here would
#: only re-run the same engine code paths.
FAMILY_PARAMS = {
    "gnp": {"n": 12, "p": 0.3},
    "geometric": {"n": 10, "radius": 0.5},
    "grid": {"rows": 3, "cols": 4},
    "ring": {"num_blobs": 3, "blob_size": 3},
    "powerlaw": {"n": 12, "m_attach": 2},
}

#: Every built-in network model, with adversity parameters that exercise
#: drops, delays, crashes, and fragmentation on these graphs. CrashStop
#: victims are resolved per graph (the first two nodes).
NETWORKS = {
    "reliable": lambda g: "reliable",
    "delay": lambda g: {"model": "delay", "params": {"max_delay": 3}},
    "lossy": lambda g: {
        "model": "lossy", "params": {"drop_p": 0.2, "retransmit": 2},
    },
    "crash": lambda g: {
        "model": "crash",
        "params": {"victims": list(g.nodes[:2]), "at_round": 2},
    },
    "bandwidth": lambda g: {"model": "bandwidth", "params": {"cap_bits": 16}},
}

#: Every built-in NodeProgram, plus its final-state fingerprint.
PROGRAMS = {
    "floodmax": (
        lambda g: {v: FloodMaxLeaderElection() for v in g.nodes},
        lambda programs, g: [programs[v].leader for v in g.nodes],
    ),
    "echo": (
        lambda g: {v: EchoBroadcast(g.nodes[0]) for v in g.nodes},
        lambda programs, g: [
            (programs[v].informed, programs[v].parent, programs[v].done)
            for v in g.nodes
        ],
    ),
}

assert set(FAMILY_PARAMS) <= set(GRAPH_FAMILIES)


def _build_graph(family):
    return GRAPH_FAMILIES[family].build(
        random.Random(0xC0FFEE), **FAMILY_PARAMS[family]
    )


def _execute(backend, program_key, family, network_key):
    """One full run; returns the execution fingerprint."""
    graph = _build_graph(family)
    make_programs, fingerprint = PROGRAMS[program_key]
    programs = make_programs(graph)
    trace = TraceRecorder()
    sim = Simulator(
        graph,
        programs,
        network=NETWORKS[network_key](graph),
        trace=trace,
        net_seed=17,
        backend=backend,
    )
    rounds = sim.run_to_completion()
    return {
        "rounds": rounds,
        "ledger_rounds": sim.run.rounds,
        "messages": sim.run.messages,
        "bits": sim.run.bits,
        "edge_messages": sorted(
            sim.run.edge_messages.items(), key=repr
        ),
        "network_stats": dict(sim.network.stats),
        "programs": fingerprint(programs, graph),
        "trace": trace.events,
    }


#: Reference fingerprints, computed once per (program, family, network).
_reference_cache = {}


def _reference(program_key, family, network_key):
    key = (program_key, family, network_key)
    if key not in _reference_cache:
        _reference_cache[key] = _execute(
            "reference", program_key, family, network_key
        )
    return _reference_cache[key]


# NOTE: engine names appear only in parametrize ids, never in function
# names, so CI's per-engine `-k <backend>` matrix filter selects exactly
# one engine's cases and a failure is attributed to that engine.
@pytest.mark.parametrize("network_key", sorted(NETWORKS))
@pytest.mark.parametrize("family", sorted(FAMILY_PARAMS))
@pytest.mark.parametrize("program_key", sorted(PROGRAMS))
@pytest.mark.parametrize("backend", MATRIX_BACKENDS)
def test_engine_matches_baseline(backend, program_key, family, network_key):
    expected = _reference(program_key, family, network_key)
    actual = _execute(_engine_for(backend), program_key, family, network_key)
    # Compare field by field for readable failures.
    for field in expected:
        assert actual[field] == expected[field], (
            f"{backend} diverges from reference on {field} "
            f"({program_key} × {family} × {network_key})"
        )


@pytest.mark.parametrize("backend", ["reference"] + MATRIX_BACKENDS)
def test_pinned_grid_execution(backend):
    """The clean-channel FloodMax execution on the 3×4 grid is pinned:
    any engine (including reference itself) must reproduce these counts.
    """
    result = _execute(_engine_for(backend), "floodmax", "grid", "reliable")
    expected = _reference("floodmax", "grid", "reliable")
    assert result == expected
    assert result["rounds"] > 0
    assert result["messages"] > 0
    # Every node elected the true maximum id.
    graph = _build_graph("grid")
    assert result["programs"] == [max(graph.nodes)] * graph.num_nodes


class TestStrictFailureConformance:
    """A network model raising mid-flush (strict BandwidthCap) must leave
    the ledger in the same state on every in-process engine: reference
    only charges the ledger after the whole flush succeeds."""

    @pytest.mark.parametrize("backend", ["reference", "flatarray"])
    def test_ledger_untouched_after_strict_reject(self, backend):
        from repro.congest.simulator import NodeProgram
        from repro.exceptions import CongestViolationError
        from repro.model.graph import WeightedGraph

        class Blob(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(1, "x" * 100)

            def on_round(self, ctx, inbox):
                ctx.halt()

        graph = WeightedGraph([0, 1], [(0, 1, 1)])
        sim = Simulator(
            graph,
            {v: Blob() for v in graph.nodes},
            network={
                "model": "bandwidth",
                "params": {"cap_bits": 64, "strict": True},
            },
            backend=backend,
        )
        with pytest.raises(CongestViolationError):
            sim.run_to_completion()
        assert sim.run.rounds == 0
        assert sim.run.messages == 0
        assert dict(sim.run.edge_messages) == {}


class TestTraceConformance:
    """Satellite: the JSONL event stream from flatarray matches the
    reference recorder event-for-event on a fixed seed."""

    @pytest.mark.parametrize("backend", MATRIX_BACKENDS)
    def test_jsonl_streams_identical(self, tmp_path, backend):
        def run(engine, path):
            graph = _build_graph("gnp")
            trace = TraceRecorder(path=path)
            programs = {v: FloodMaxLeaderElection() for v in graph.nodes}
            sim = Simulator(
                graph,
                programs,
                network={
                    "model": "lossy",
                    "params": {"drop_p": 0.3, "retransmit": 1},
                },
                trace=trace,
                net_seed=23,
                backend=engine,
            )
            sim.run_to_completion()
            trace.close()
            return trace

        ref_path = tmp_path / "reference.jsonl"
        alt_path = tmp_path / f"{backend}.jsonl"
        ref = run("reference", ref_path)
        alt = run(_engine_for(backend), alt_path)
        assert alt.events == ref.events
        # The streamed JSONL files are byte-identical too.
        assert alt_path.read_bytes() == ref_path.read_bytes()

    def test_loss_accounting_matches(self):
        ref = _execute("reference", "floodmax", "gnp", "lossy")
        flat = _execute("flatarray", "floodmax", "gnp", "lossy")
        assert flat["network_stats"] == ref["network_stats"]
        # The channel actually misbehaved on this seed (retries and/or
        # final drops), and both engines drew the identical RNG stream.
        assert (
            ref["network_stats"].get("retransmissions", 0)
            + ref["network_stats"].get("dropped", 0)
        ) > 0
        drops_ref = sum(
            1 for e in ref["trace"] if e["event"] == "send" and e["dropped"]
        )
        drops_flat = sum(
            1 for e in flat["trace"] if e["event"] == "send" and e["dropped"]
        )
        assert drops_flat == drops_ref == ref["network_stats"].get("dropped", 0)
