"""Unit tests for WeightedGraph: construction, metrics, paths, balls."""

from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import GraphValidationError
from repro.model import WeightedGraph
from repro.model.graph import canonical_edge


class TestConstruction:
    def test_basic(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3
        assert triangle.weight(0, 1) == 1
        assert triangle.weight(1, 0) == 1

    def test_from_edges_implies_nodes(self):
        g = WeightedGraph.from_edges([(5, 7, 2)])
        assert set(g.nodes) == {5, 7}

    def test_rejects_self_loop(self):
        with pytest.raises(GraphValidationError):
            WeightedGraph([0, 1], [(0, 0, 1), (0, 1, 1)])

    def test_rejects_unknown_node(self):
        with pytest.raises(GraphValidationError):
            WeightedGraph([0, 1], [(0, 2, 1)])

    def test_rejects_conflicting_weights(self):
        with pytest.raises(GraphValidationError):
            WeightedGraph([0, 1], [(0, 1, 1), (1, 0, 2)])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(GraphValidationError):
            WeightedGraph([0, 1], [(0, 1, 0)])

    def test_rejects_non_integer_weight(self):
        with pytest.raises(GraphValidationError):
            WeightedGraph([0, 1], [(0, 1, 1.5)])

    def test_rejects_disconnected(self):
        with pytest.raises(GraphValidationError):
            WeightedGraph([0, 1, 2], [(0, 1, 1)])

    def test_rejects_empty(self):
        with pytest.raises(GraphValidationError):
            WeightedGraph([], [])

    def test_networkx_roundtrip(self, grid33):
        again = WeightedGraph.from_networkx(grid33.to_networkx())
        assert again.edge_set() == grid33.edge_set()
        assert again.total_weight() == grid33.total_weight()

    def test_networkx_default_weight_is_one(self):
        g = WeightedGraph.from_networkx(nx.path_graph(3))
        assert g.weight(0, 1) == 1

    def test_nodes_sorted_deterministically(self):
        g = WeightedGraph([3, 1, 2], [(1, 2, 1), (2, 3, 1)])
        assert list(g.nodes) == [1, 2, 3]

    def test_neighbors_and_degree(self, triangle):
        assert triangle.neighbors(0) == (1, 2)
        assert triangle.degree(0) == 2

    def test_edge_weight_sum(self, triangle):
        assert triangle.edge_weight_sum([(0, 1), (1, 2)]) == 3


class TestShortestPaths:
    def test_distance_prefers_light_path(self, triangle):
        # 0-2 direct costs 4, via 1 costs 3.
        assert triangle.distance(0, 2) == 3

    def test_shortest_path_nodes(self, triangle):
        assert triangle.shortest_path(0, 2) == [0, 1, 2]

    def test_path_weight(self, triangle):
        assert triangle.path_weight([0, 1, 2]) == 3

    def test_path_edges_canonical(self):
        assert WeightedGraph.path_edges([2, 1, 0]) == [(1, 2), (0, 1)]

    def test_dijkstra_parent_of_source_is_none(self, grid33):
        _, parent = grid33.dijkstra(0)
        assert parent[0] is None

    def test_dijkstra_tie_break_prefers_fewer_hops(self):
        # Two shortest 0→3 paths of weight 2: direct edge (1 hop, weight 2)
        # vs 0-1-3 (2 hops).
        g = WeightedGraph(
            range(4), [(0, 1, 1), (1, 3, 1), (0, 3, 2), (1, 2, 5), (2, 3, 5)]
        )
        assert g.shortest_path(0, 3) == [0, 3]

    def test_all_pairs_symmetric(self, grid33):
        apd = grid33.all_pairs_distances()
        for u in grid33.nodes:
            for v in grid33.nodes:
                assert apd[u][v] == apd[v][u]

    def test_matches_networkx(self, rng):
        g = nx.gnp_random_graph(12, 0.4, seed=7)
        if not nx.is_connected(g):
            g = nx.compose(g, nx.path_graph(12))
        for u, v in g.edges:
            g[u][v]["weight"] = rng.randint(1, 9)
        wg = WeightedGraph.from_networkx(g)
        nxd = dict(nx.all_pairs_dijkstra_path_length(g))
        apd = wg.all_pairs_distances()
        for u in wg.nodes:
            for v in wg.nodes:
                assert apd[u][v] == nxd[u][v]


class TestMetrics:
    def test_path_metrics(self, path5):
        assert path5.unweighted_diameter() == 4
        assert path5.weighted_diameter() == 4
        assert path5.shortest_path_diameter() == 4

    def test_grid_metrics(self, grid33):
        assert grid33.unweighted_diameter() == 4
        assert grid33.weighted_diameter() == 4
        assert grid33.shortest_path_diameter() == 4

    def test_s_exceeds_D_with_heavy_shortcut(self):
        # Star hub gives D = 2, but weighted shortest paths hug the path,
        # so s equals the path length.
        from repro.lowerbounds import path_gadget

        inst = path_gadget(10)
        assert inst.graph.unweighted_diameter() == 2
        assert inst.graph.shortest_path_diameter() == 10

    def test_metric_ordering_D_le_s(self, rng):
        for seed in range(5):
            g = nx.gnp_random_graph(10, 0.4, seed=seed)
            if not nx.is_connected(g):
                g = nx.compose(g, nx.path_graph(10))
            for u, v in g.edges:
                g[u][v]["weight"] = rng.randint(1, 9)
            wg = WeightedGraph.from_networkx(g)
            assert wg.unweighted_diameter() <= wg.shortest_path_diameter()
            assert wg.shortest_path_diameter() <= wg.weighted_diameter()

    def test_unit_weights_make_s_equal_D(self, grid44):
        assert (
            grid44.shortest_path_diameter() == grid44.unweighted_diameter()
        )


class TestBalls:
    def test_zero_radius_is_center_only(self, path5):
        ball = path5.ball(2, Fraction(0))
        assert ball.nodes == frozenset({2})
        assert ball.covered_weight() == 0

    def test_fractional_edge_coverage(self, path5):
        ball = path5.ball(0, Fraction(3, 2))
        assert ball.nodes == frozenset({0, 1})
        # Edge (0,1) fully covered; half of (1,2).
        assert ball.edge_fractions[(0, 1)] == 1
        assert ball.edge_fractions[(1, 2)] == Fraction(1, 2)

    def test_two_sided_coverage(self):
        g = WeightedGraph([0, 1], [(0, 1, 4)])
        ball = g.ball(0, Fraction(1))
        assert ball.edge_fractions[(0, 1)] == Fraction(1, 4)

    def test_coverage_capped_at_full_edge(self, path5):
        ball = path5.ball(0, Fraction(10))
        assert all(f == 1 for f in ball.edge_fractions.values())
        assert ball.nodes == frozenset(path5.nodes)

    def test_paper_example_weight3_edge(self):
        """Section 2's example: the only incident edge has weight 3; the
        radius-2 moat contains 2/3 of the edge."""
        g = WeightedGraph([0, 1, 2], [(0, 1, 3), (1, 2, 1)])
        ball = g.ball(0, Fraction(2))
        assert ball.nodes == frozenset({0})
        assert ball.edge_fractions[(0, 1)] == Fraction(2, 3)


class TestCanonicalEdge:
    def test_orders_by_repr(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)

    @given(st.integers(0, 99), st.integers(0, 99))
    def test_symmetric(self, a, b):
        assert canonical_edge(a, b) == canonical_edge(b, a)
