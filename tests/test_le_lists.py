"""Tests for least-element lists."""

import math
import random

import pytest

from repro.congest import CongestRun
from repro.randomized.le_lists import (
    ancestor_from_le_list,
    distributed_le_lists,
    le_list_reference,
)
from repro.workloads import random_connected_graph


def _random_ranks(graph, seed):
    nodes = list(graph.nodes)
    rng = random.Random(seed)
    rng.shuffle(nodes)
    return {v: i for i, v in enumerate(nodes)}


class TestReference:
    def test_starts_at_self_ends_at_top(self, grid33):
        rank = _random_ranks(grid33, 1)
        top = max(grid33.nodes, key=lambda v: rank[v])
        for v in grid33.nodes:
            le = le_list_reference(grid33, rank, v)
            assert le[0] == (0, v)
            assert le[-1][1] == top

    def test_ranks_strictly_increase(self, grid33):
        rank = _random_ranks(grid33, 2)
        for v in grid33.nodes:
            le = le_list_reference(grid33, rank, v)
            ranks = [rank[u] for _, u in le]
            assert ranks == sorted(ranks)
            assert len(set(ranks)) == len(ranks)

    def test_expected_logarithmic_length(self):
        """|LE(v)| is O(log n) in expectation over the rank order."""
        graph = random_connected_graph(24, 0.2, random.Random(3))
        lengths = []
        for seed in range(10):
            rank = _random_ranks(graph, seed)
            for v in list(graph.nodes)[:5]:
                lengths.append(len(le_list_reference(graph, rank, v)))
        mean = sum(lengths) / len(lengths)
        assert mean <= 4 * math.log(graph.num_nodes)


class TestDistributed:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference(self, grid33, seed):
        rank = _random_ranks(grid33, seed)
        run = CongestRun(grid33)
        lists = distributed_le_lists(grid33, rank, run)
        for v in grid33.nodes:
            assert lists[v] == le_list_reference(grid33, rank, v)

    def test_rounds_charged(self, grid33):
        rank = _random_ranks(grid33, 0)
        run = CongestRun(grid33)
        distributed_le_lists(grid33, rank, run)
        assert run.rounds > 0

    def test_random_graph_matches(self):
        graph = random_connected_graph(14, 0.3, random.Random(5))
        rank = _random_ranks(graph, 9)
        run = CongestRun(graph)
        lists = distributed_le_lists(graph, rank, run)
        for v in list(graph.nodes)[:6]:
            assert lists[v] == le_list_reference(graph, rank, v)


class TestAncestorLookup:
    def test_highest_rank_within_radius(self, grid33):
        rank = _random_ranks(grid33, 4)
        apd = grid33.all_pairs_distances()
        for v in grid33.nodes:
            le = le_list_reference(grid33, rank, v)
            for radius in (0, 1, 2, 4):
                expected = max(
                    (u for u in grid33.nodes if apd[v][u] <= radius),
                    key=lambda u: rank[u],
                )
                assert ancestor_from_le_list(le, radius) == expected

    def test_radius_below_zero_entries(self):
        assert ancestor_from_le_list([(1, "a")], 0) is None
