"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSolve:
    def test_default_algorithm(self, capsys):
        assert main(["solve", "--n", "12", "--k", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "weight" in out
        assert "rounds" in out

    def test_exact_flag(self, capsys):
        code = main(
            ["solve", "--n", "10", "--k", "2", "--seed", "2", "--exact"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimum" in out
        assert "ratio" in out

    @pytest.mark.parametrize(
        "algorithm",
        ["moat", "rounded", "distributed", "randomized", "spanner"],
    )
    def test_each_algorithm(self, algorithm, capsys):
        code = main(
            [
                "solve",
                "--n", "10",
                "--k", "2",
                "--seed", "3",
                "--algorithm", algorithm,
            ]
        )
        assert code == 0


class TestCompare:
    def test_prints_all_rows(self, capsys):
        assert main(["compare", "--n", "10", "--k", "2", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        for name in ("moat", "distributed", "randomized", "khan", "spanner"):
            assert name in out


class TestGadget:
    def test_ic_gadget(self, capsys):
        assert main(["gadget", "--kind", "ic", "--universe", "5"]) == 0
        out = capsys.readouterr().out
        assert "dichotomy : holds" in out

    def test_cr_gadget_intersecting(self, capsys):
        code = main(
            ["gadget", "--kind", "cr", "--universe", "5", "--intersecting"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "A∩B≠∅     : True" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
