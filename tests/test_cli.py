"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_backend_arg, parse_network_arg


class TestSolve:
    def test_default_algorithm(self, capsys):
        assert main(["solve", "--n", "12", "--k", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "weight" in out
        assert "rounds" in out

    def test_exact_flag(self, capsys):
        code = main(
            ["solve", "--n", "10", "--k", "2", "--seed", "2", "--exact"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimum" in out
        assert "ratio" in out

    @pytest.mark.parametrize(
        "algorithm",
        ["moat", "rounded", "distributed", "randomized", "spanner"],
    )
    def test_each_algorithm(self, algorithm, capsys):
        code = main(
            [
                "solve",
                "--n", "10",
                "--k", "2",
                "--seed", "3",
                "--algorithm", algorithm,
            ]
        )
        assert code == 0


class TestCompare:
    def test_prints_all_rows(self, capsys):
        assert main(["compare", "--n", "10", "--k", "2", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        for name in ("moat", "distributed", "randomized", "khan", "spanner"):
            assert name in out


class TestGadget:
    def test_ic_gadget(self, capsys):
        assert main(["gadget", "--kind", "ic", "--universe", "5"]) == 0
        out = capsys.readouterr().out
        assert "dichotomy : holds" in out

    def test_cr_gadget_intersecting(self, capsys):
        code = main(
            ["gadget", "--kind", "cr", "--universe", "5", "--intersecting"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "A∩B≠∅     : True" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweep:
    def test_list_scenarios(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "gnp-core" in out and "grid-rounds" in out

    def test_sweep_persists_then_hits_cache(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        args = ["sweep", "--scenario", "grid-rounds", "--store", store]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "executed=   8 cached=   0" in out
        assert "scenario: grid-rounds" in out
        # An identical re-run executes nothing: every row comes from cache.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "executed=   0 cached=   8" in out
        with open(store) as handle:
            assert len(handle.readlines()) == 8

    def test_sweep_parallel_workers(self, tmp_path, capsys):
        # Default mode (no --serial) goes through worker processes.
        store = str(tmp_path / "results.jsonl")
        code = main(
            ["sweep", "--scenario", "grid-rounds", "--store", store,
             "--workers", "2"]
        )
        assert code == 0
        assert "executed=   8" in capsys.readouterr().out

    def test_unknown_scenario_errors(self, capsys):
        assert main(["sweep", "--scenario", "nope", "--no-store"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'nope'" in err

    def test_invalid_spec_file_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{oops")
        assert main(["batch", str(bad), "--no-store"]) == 2
        assert "invalid spec file" in capsys.readouterr().err


class TestBatch:
    def test_batch_runs_spec_file(self, tmp_path, capsys):
        spec = {
            "name": "adhoc",
            "family": "grid",
            "algorithms": ["moat"],
            "grid": {"rows": 3, "cols": 3, "k": 2, "component_size": 2},
            "seeds": 2,
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        store = str(tmp_path / "results.jsonl")
        code = main(
            ["batch", str(spec_path), "--store", store, "--serial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adhoc" in out and "executed=   2" in out


class TestNetworkOptions:
    def test_parse_name_only(self):
        assert parse_network_arg("lossy") == {"model": "lossy", "params": {}}

    def test_parse_key_values(self):
        spec = parse_network_arg("lossy:drop_p=0.2,retransmit=2")
        assert spec == {
            "model": "lossy",
            "params": {"drop_p": 0.2, "retransmit": 2},
        }

    def test_parse_bracketed_list_value(self):
        spec = parse_network_arg("crash:victims=[0,1],at_round=2")
        assert spec["params"] == {"victims": [0, 1], "at_round": 2}

    def test_parse_json_object(self):
        text = '{"model": "delay", "params": {"max_delay": 3}}'
        assert parse_network_arg(text)["params"] == {"max_delay": 3}

    def test_parse_rejects_bare_parameter(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_network_arg("lossy:0.2")

    def test_list_shows_network_axis(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "gnp-adversity" in out
        assert "delay" in out and "lossy" in out

    def test_sweep_network_override_distinct_cache_rows(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        args = [
            "sweep", "--scenario", "grid-rounds", "--store", store, "--serial",
            "--network", "reliable",
            "--network", "delay:max_delay=2",
            "--network", "lossy:drop_p=0.1",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "executed=  24 cached=   0" in out  # 8 base jobs × 3 networks
        with open(store) as handle:
            rows = [json.loads(line) for line in handle]
        assert len({row["key"] for row in rows}) == 24
        assert {row["network_model"] for row in rows} == {
            "reliable", "delay", "lossy",
        }

    def test_invalid_network_errors(self, capsys):
        code = main(
            ["sweep", "--scenario", "grid-rounds", "--no-store",
             "--network", "lossy:oops"]
        )
        assert code == 2
        assert "invalid --network" in capsys.readouterr().err

    def test_report_network_filter(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        main(["sweep", "--scenario", "grid-rounds", "--store", store,
              "--serial", "--network", "delay:max_delay=2"])
        capsys.readouterr()
        assert main(["report", "--store", store, "--network", "delay"]) == 0
        assert "delay" in capsys.readouterr().out
        assert main(["report", "--store", store, "--network", "crash"]) == 0
        assert "no records" in capsys.readouterr().out


class TestBackendOptions:
    def test_parse_name_only(self):
        assert parse_backend_arg("flatarray") == {
            "name": "flatarray", "params": {},
        }

    def test_parse_key_values(self):
        spec = parse_backend_arg("sharded:num_shards=4")
        assert spec == {"name": "sharded", "params": {"num_shards": 4}}

    def test_parse_json_object(self):
        text = '{"name": "sharded", "params": {"num_shards": 2}}'
        assert parse_backend_arg(text)["params"] == {"num_shards": 2}

    def test_parse_rejects_bare_parameter(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_backend_arg("sharded:4")

    def test_parse_rejects_misplaced_json_keys(self):
        # Parameters nested one level too shallow must error, not
        # silently run the engine with defaults.
        with pytest.raises(ValueError, match="unexpected backend spec keys"):
            parse_backend_arg('{"name": "sharded", "num_shards": 8}')
        with pytest.raises(ValueError, match="unexpected network spec keys"):
            parse_network_arg('{"model": "lossy", "drop_p": 0.5}')

    def test_sweep_backend_override_distinct_cache_rows(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        args = [
            "sweep", "--scenario", "grid-rounds", "--store", store, "--serial",
            "--backend", "reference",
            "--backend", "flatarray",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "executed=  16 cached=   0" in out  # 8 base jobs × 2 backends
        with open(store) as handle:
            rows = [json.loads(line) for line in handle]
        assert len({row["key"] for row in rows}) == 16
        assert {row["backend_name"] for row in rows} == {
            "reference", "flatarray",
        }

    def test_invalid_backend_errors(self, capsys):
        code = main(
            ["sweep", "--scenario", "grid-rounds", "--no-store",
             "--backend", "sharded:oops"]
        )
        assert code == 2
        assert "invalid --backend" in capsys.readouterr().err

    def test_unknown_backend_errors(self, capsys):
        code = main(
            ["sweep", "--scenario", "grid-rounds", "--no-store",
             "--backend", "quantum"]
        )
        assert code == 2
        assert "invalid --backend" in capsys.readouterr().err

    def test_report_backend_filter(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        main(["sweep", "--scenario", "grid-rounds", "--store", store,
              "--serial", "--backend", "flatarray"])
        capsys.readouterr()
        assert main(["report", "--store", store, "--backend", "flatarray"]) == 0
        assert "flatarray" in capsys.readouterr().out
        assert main(["report", "--store", store, "--backend", "sharded"]) == 0
        assert "no records" in capsys.readouterr().out

    def test_sweep_emits_progress_to_stderr(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        assert main(["sweep", "--scenario", "grid-rounds", "--store", store,
                     "--serial"]) == 0
        err = capsys.readouterr().err
        assert "[grid-rounds] 8 jobs: 0 cache hits, 8 to run" in err
        assert "job 8/8 done" in err


class TestReport:
    def test_report_renders_store(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        main(["sweep", "--scenario", "grid-rounds", "--store", store,
              "--serial"])
        capsys.readouterr()
        assert main(["report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "scenario: grid-rounds" in out
        assert "sublinear" in out

    def test_report_scenario_filter(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        main(["sweep", "--scenario", "grid-rounds", "--store", store,
              "--serial"])
        capsys.readouterr()
        assert main(["report", "--store", store,
                     "--scenario", "absent"]) == 0
        assert "no records" in capsys.readouterr().out
