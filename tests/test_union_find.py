"""Unit tests for the union-find structure."""

from hypothesis import given, strategies as st

from repro.util import UnionFind


class TestBasics:
    def test_singletons_disconnected(self):
        uf = UnionFind([1, 2, 3])
        assert not uf.connected(1, 2)
        assert uf.num_sets == 3

    def test_union_connects(self):
        uf = UnionFind([1, 2])
        assert uf.union(1, 2)
        assert uf.connected(1, 2)
        assert uf.num_sets == 1

    def test_union_cycle_returns_false(self):
        uf = UnionFind([1, 2, 3])
        uf.union(1, 2)
        uf.union(2, 3)
        assert not uf.union(1, 3)

    def test_lazy_element_creation(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf

    def test_transitivity(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_set_size(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.set_size(2) == 3
        assert uf.set_size(3) == 1

    def test_sets_materialize(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        groups = sorted(sorted(s) for s in uf.sets())
        assert groups == [[0, 1], [2], [3]]

    def test_len_counts_elements(self):
        uf = UnionFind([1, 2, 3])
        uf.union(1, 2)
        assert len(uf) == 3

    def test_iter(self):
        uf = UnionFind([1, 2])
        assert sorted(uf) == [1, 2]

    def test_hashable_mixed_types(self):
        uf = UnionFind()
        uf.union(("a", 1), ("b", 2))
        assert uf.connected(("a", 1), ("b", 2))


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20))))
    def test_connectivity_matches_graph_reachability(self, pairs):
        """Union-find connectivity equals reachability in the edge list."""
        uf = UnionFind(range(21))
        adjacency = {i: set() for i in range(21)}
        for a, b in pairs:
            uf.union(a, b)
            adjacency[a].add(b)
            adjacency[b].add(a)

        def reachable(src, dst):
            seen, stack = {src}, [src]
            while stack:
                x = stack.pop()
                if x == dst:
                    return True
                for y in adjacency[x]:
                    if y not in seen:
                        seen.add(y)
                        stack.append(y)
            return src == dst

        for a in (0, 7, 20):
            for b in (3, 15):
                assert uf.connected(a, b) == reachable(a, b)

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                    max_size=40))
    def test_num_sets_decreases_by_successful_unions(self, pairs):
        uf = UnionFind(range(16))
        successes = sum(1 for a, b in pairs if uf.union(a, b))
        assert uf.num_sets == 16 - successes
