"""Tests for the analysis helpers (scaling fits, ratio summaries)."""

import pytest

from repro.analysis import fit_power_law, normalized_cost, summarize_ratios


class TestPowerLaw:
    def test_linear_data_fits_exponent_one(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_quadratic_data(self):
        xs = [1, 2, 4, 8]
        ys = [x * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)

    def test_noisy_linear_near_one(self):
        xs = [2, 4, 8, 16, 32]
        ys = [2.1 * x + 1 for x in xs]
        fit = fit_power_law(xs, ys)
        assert 0.8 <= fit.exponent <= 1.2
        assert fit.r_squared > 0.95

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [-1, 2])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [1, 2])


class TestNormalizedCost:
    def test_elementwise(self):
        assert normalized_cost([10, 20], [5, 10]) == [2.0, 2.0]

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            normalized_cost([1], [1, 2])


class TestRatioSummary:
    def test_summary_fields(self):
        summary = summarize_ratios([1.0, 1.5, 2.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(1.5)
        assert summary.maximum == 2.0
        assert summary.minimum == 1.0

    def test_within(self):
        assert summarize_ratios([1.0, 1.9]).within(2.0)
        assert not summarize_ratios([2.1]).within(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_ratios([])
