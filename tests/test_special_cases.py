"""Tests for the Section 1 special-case wrappers."""

import random

import pytest

from repro.baselines import exact_mst_weight
from repro.core.special_cases import (
    distributed_mst,
    distributed_shortest_path,
    distributed_steiner_tree,
    steiner_tree_instance,
)
from repro.exact import steiner_tree_cost
from repro.workloads import random_connected_graph


class TestSteinerTree:
    @pytest.mark.parametrize("seed", range(5))
    def test_two_approximation(self, seed):
        graph = random_connected_graph(14, 0.35, random.Random(seed))
        rng = random.Random(seed + 100)
        terminals = rng.sample(list(graph.nodes), 4)
        result = distributed_steiner_tree(graph, terminals)
        opt = steiner_tree_cost(graph, terminals)
        inst = steiner_tree_instance(graph, terminals)
        result.solution.assert_feasible(inst)
        assert result.solution.weight <= 2 * opt

    def test_single_component(self, grid33):
        inst = steiner_tree_instance(grid33, [0, 8])
        assert inst.num_components == 1


class TestMst:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact(self, seed):
        graph = random_connected_graph(10, 0.4, random.Random(seed))
        result = distributed_mst(graph)
        assert result.solution.weight == exact_mst_weight(graph)
        # A spanning tree has exactly n - 1 edges.
        assert len(result.solution.edges) == graph.num_nodes - 1

    def test_rounds_reasonable(self, grid33):
        result = distributed_mst(grid33)
        assert result.rounds > 0


class TestShortestPath:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_distance(self, seed):
        graph = random_connected_graph(12, 0.35, random.Random(seed))
        nodes = sorted(graph.nodes)
        source, target = nodes[0], nodes[-1]
        result, weight = distributed_shortest_path(graph, source, target)
        assert weight == graph.distance(source, target)
        assert result.solution.connects(source, target)

    def test_path_is_a_path(self, grid44):
        result, _ = distributed_shortest_path(grid44, 0, 15)
        # Every node in the solution has degree ≤ 2 (a simple path).
        degree = {}
        for u, v in result.solution.edges:
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        assert all(d <= 2 for d in degree.values())
