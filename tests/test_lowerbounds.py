"""Tests for the Section 3 lower-bound gadgets and harness."""

import random

import pytest

from repro.core import distributed_moat_growing
from repro.lowerbounds import (
    cr_dichotomy_holds,
    dsf_cr_gadget,
    dsf_ic_gadget,
    ic_dichotomy_holds,
    measure_cut_traffic,
    path_gadget,
    random_disjointness_sets,
)


class TestCrGadget:
    def test_structure(self):
        gadget = dsf_cr_gadget(5, {1, 2}, {3, 4})
        graph = gadget.instance.graph
        assert graph.num_nodes == 2 * 5 + 4
        assert len(gadget.cut_edges) == 4
        assert len(gadget.heavy_edges) == 2

    def test_parameters_match_lemma(self):
        """Lemma 3.1: t ≤ n and k ≤ 2; diameter at most 4."""
        gadget = dsf_cr_gadget(6, {1, 2, 3}, {4, 5})
        inst = gadget.instance
        assert inst.num_terminals <= 2 * 6
        assert inst.graph.unweighted_diameter() <= 4

    def test_heavy_weight_formula(self):
        rho, n = 3, 5
        gadget = dsf_cr_gadget(n, {1}, {2}, rho=rho)
        graph = gadget.instance.graph
        heavy = max(w for _, _, w in graph.edges())
        assert heavy == rho * (2 * n + 2) + 1

    @pytest.mark.parametrize("intersecting", [False, True])
    def test_dichotomy(self, intersecting):
        rng = random.Random(17)
        a, b = random_disjointness_sets(6, rng, intersecting)
        gadget = dsf_cr_gadget(6, a, b)
        assert gadget.intersecting == intersecting
        assert cr_dichotomy_holds(gadget)

    def test_explicit_disjoint(self):
        gadget = dsf_cr_gadget(4, {1, 2}, {3, 4})
        assert not gadget.intersecting
        assert cr_dichotomy_holds(gadget)

    def test_explicit_intersecting(self):
        gadget = dsf_cr_gadget(4, {1, 2}, {2, 3})
        assert gadget.intersecting
        assert cr_dichotomy_holds(gadget)


class TestIcGadget:
    def test_structure(self):
        gadget = dsf_ic_gadget(5, {1, 2}, {2, 3})
        graph = gadget.instance.graph
        assert graph.num_nodes == 2 * 5 + 2
        assert graph.unweighted_diameter() <= 4  # Lemma 3.3: diameter 3-ish
        assert gadget.cut_edges == frozenset({gadget.bridge})

    @pytest.mark.parametrize("intersecting", [False, True])
    def test_dichotomy(self, intersecting):
        rng = random.Random(23)
        a, b = random_disjointness_sets(7, rng, intersecting)
        gadget = dsf_ic_gadget(7, a, b)
        assert ic_dichotomy_holds(gadget)

    def test_k_bounded_by_universe(self):
        gadget = dsf_ic_gadget(6, {1, 2, 3}, {2, 3, 4})
        assert gadget.instance.num_components <= 6


class TestCutTraffic:
    def test_traffic_grows_with_universe(self):
        """The Ω(k)-shaped cut traffic of Lemma 3.3."""
        rng = random.Random(5)
        sizes = [4, 8, 16]
        bits = []
        for universe in sizes:
            a, b = random_disjointness_sets(universe, rng, True)
            gadget = dsf_ic_gadget(universe, a, b)
            bits.append(measure_cut_traffic(gadget))
        assert bits[0] < bits[-1]

    def test_custom_algorithm_hook(self):
        gadget = dsf_ic_gadget(4, {1, 2}, {2, 3})
        calls = []

        def algo(instance, run):
            calls.append(True)
            distributed_moat_growing(instance, run)

        bits = measure_cut_traffic(gadget, algorithm=algo)
        assert calls and bits >= 0


class TestPathGadget:
    def test_parameters(self):
        inst = path_gadget(15)
        assert inst.num_terminals == 2
        assert inst.num_components == 1
        assert inst.graph.unweighted_diameter() == 2
        assert inst.graph.shortest_path_diameter() == 15

    def test_rounds_scale_with_s(self):
        """Lemma 3.4's shape: rounds grow with s even at constant D."""
        rounds = []
        for length in (4, 16):
            inst = path_gadget(length)
            result = distributed_moat_growing(inst)
            assert result.solution.weight == length  # the cheap path
            rounds.append(result.rounds)
        assert rounds[0] < rounds[1]

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            path_gadget(0)
