"""Tests for the randomized algorithm (Section 5, Theorem 5.2)."""

import math
import random

import pytest

from repro.congest import CongestRun
from repro.exact import steiner_forest_cost
from repro.model import ForestSolution
from repro.randomized import (
    build_embedding,
    build_reduced_instance,
    first_stage_selection,
    randomized_steiner_forest,
)
from tests.conftest import make_random_instance


class TestEmbedding:
    def _embed(self, graph, seed=0, truncate_at=None):
        run = CongestRun(graph)
        return build_embedding(
            graph, run, random.Random(seed), truncate_at=truncate_at
        ), run

    def test_ancestor_ranks_nondecreasing(self, grid44):
        emb, _ = self._embed(grid44)
        for v in grid44.nodes:
            ranks = [emb.rank[a] for a in emb.ancestors[v]]
            assert ranks == sorted(ranks)

    def test_top_ancestor_is_global_max(self, grid44):
        emb, _ = self._embed(grid44)
        top = max(grid44.nodes, key=lambda v: emb.rank[v])
        for v in grid44.nodes:
            assert emb.ancestors[v][-1] == top

    def test_ancestor_within_ball(self, grid44):
        emb, _ = self._embed(grid44)
        apd = grid44.all_pairs_distances()
        for v in grid44.nodes:
            for i, anc in enumerate(emb.ancestors[v]):
                assert apd[v][anc] <= emb.beta * (1 << i)

    def test_beta_in_range(self, grid44):
        emb, _ = self._embed(grid44, seed=3)
        assert 1 <= emb.beta <= 2

    def test_truncation_stops_at_s_nodes(self, grid44):
        emb, _ = self._embed(grid44, truncate_at=4)
        assert len(emb.s_nodes) == 4
        for v in grid44.nodes:
            for anc in emb.ancestors[v]:
                assert anc not in emb.s_nodes

    def test_truncated_nodes_know_nearest_s(self, grid44):
        emb, _ = self._embed(grid44, truncate_at=4)
        for v in grid44.nodes:
            if emb.truncation_level[v] < emb.levels:
                assert emb.nearest_s[v] is not None

    def test_paths_per_node_logarithmic_shape(self, grid44):
        """The paper's key structural claim: O(log n) distinct embedding
        paths per node w.h.p. — allow a generous constant."""
        emb, _ = self._embed(grid44)
        n = grid44.num_nodes
        assert emb.max_paths_per_node <= 12 * math.log2(n) + 4

    def test_rounds_charged(self, grid44):
        _, run = self._embed(grid44)
        assert run.rounds > 0


class TestFirstStage:
    def test_resolves_all_labels_without_truncation(self):
        inst = make_random_instance(7)
        run = CongestRun(inst.graph)
        emb = build_embedding(inst.graph, run, random.Random(1))
        stage = first_stage_selection(inst, emb, run)
        labels = set(inst.labels.values())
        assert stage.resolved == labels

    def test_selected_edges_feasible_without_truncation(self):
        """Corollary G.10: for S = ∅ the first stage already solves the
        instance."""
        for seed in range(5):
            inst = make_random_instance(seed)
            run = CongestRun(inst.graph)
            emb = build_embedding(inst.graph, run, random.Random(seed))
            stage = first_stage_selection(inst, emb, run)
            sol = ForestSolution(inst.graph, stage.edges)
            sol.assert_feasible(inst)

    def test_naive_routing_not_faster(self):
        inst = make_random_instance(3, n_range=(14, 14), k_range=(3, 3))
        run1 = CongestRun(inst.graph)
        emb = build_embedding(inst.graph, run1, random.Random(5))
        pipelined = first_stage_selection(inst, emb, run1)
        run2 = CongestRun(inst.graph)
        naive = first_stage_selection(inst, emb, run2, naive=True)
        assert naive.routing_rounds >= pipelined.routing_rounds

    def test_multiplex_factor_recorded(self):
        inst = make_random_instance(2)
        run = CongestRun(inst.graph)
        emb = build_embedding(inst.graph, run, random.Random(2))
        stage = first_stage_selection(inst, emb, run)
        assert stage.multiplex_factor >= 1


class TestReducedInstance:
    def test_reduced_terminals_bounded_by_s(self):
        inst = make_random_instance(4, n_range=(16, 16), k_range=(2, 3))
        run = CongestRun(inst.graph)
        truncate = max(1, math.isqrt(inst.graph.num_nodes))
        emb = build_embedding(
            inst.graph, run, random.Random(4), truncate_at=truncate
        )
        stage = first_stage_selection(inst, emb, run)
        reduced = build_reduced_instance(inst, stage, emb.s_nodes, run)
        if reduced is not None:
            # Super-terminals are clusters (≤ |S|) plus w.h.p.-empty strays.
            cluster_terms = [
                v
                for v in reduced.instance.terminals
                if isinstance(v, tuple) and v[0] == "cluster"
            ]
            assert len(cluster_terms) <= len(emb.s_nodes)

    def test_reduced_optimum_at_most_original(self):
        """Lemma G.14 (spot check)."""
        inst = make_random_instance(8, n_range=(12, 12), k_range=(2, 2))
        run = CongestRun(inst.graph)
        emb = build_embedding(
            inst.graph, run, random.Random(8), truncate_at=3
        )
        stage = first_stage_selection(inst, emb, run)
        reduced = build_reduced_instance(inst, stage, emb.s_nodes, run)
        if reduced is not None and reduced.instance.num_components <= 4:
            assert steiner_forest_cost(reduced.instance) <= (
                steiner_forest_cost(inst)
            )


class TestFullAlgorithm:
    @pytest.mark.parametrize("seed", range(6))
    def test_feasible_both_regimes(self, seed):
        inst = make_random_instance(seed)
        for force in (False, True):
            result = randomized_steiner_forest(
                inst, rng=random.Random(seed), force_truncation=force
            )
            result.solution.assert_feasible(inst)

    @pytest.mark.parametrize("seed", range(6))
    def test_logn_approximation_shape(self, seed):
        """O(log n) ratio with a generous constant (expectation bound)."""
        inst = make_random_instance(seed)
        opt = steiner_forest_cost(inst)
        result = randomized_steiner_forest(inst, rng=random.Random(seed))
        if opt > 0:
            n = inst.graph.num_nodes
            assert result.solution.weight <= 8 * math.log2(n) * opt

    def test_repetitions_never_worse_in_expectation(self):
        inst = make_random_instance(9)
        single = randomized_steiner_forest(
            inst, rng=random.Random(1), repetitions=1
        )
        multi = randomized_steiner_forest(
            inst, rng=random.Random(1), repetitions=4
        )
        assert multi.solution.weight <= single.solution.weight

    def test_ratio_statistics_over_seeds(self):
        """Average ratio over seeds stays well under the log n envelope."""
        inst = make_random_instance(10, k_range=(2, 2))
        opt = steiner_forest_cost(inst)
        if opt == 0:
            pytest.skip("trivial instance")
        ratios = []
        for seed in range(8):
            result = randomized_steiner_forest(
                inst, rng=random.Random(seed)
            )
            ratios.append(result.solution.weight / opt)
        assert sum(ratios) / len(ratios) <= 4.0

    def test_rounds_recorded(self):
        inst = make_random_instance(11)
        result = randomized_steiner_forest(inst, rng=random.Random(0))
        assert result.rounds > 0
        assert result.run.phase_rounds
