"""End-to-end integration tests: all algorithms on shared instances."""

import random

import pytest

from repro.baselines import khan_steiner_forest, spanner_steiner_forest
from repro.core import (
    distributed_moat_growing,
    moat_growing,
    rounded_moat_growing,
    sublinear_moat_growing,
)
from repro.exact import steiner_forest_cost
from repro.randomized import randomized_steiner_forest
from repro.workloads import grid_instance, ring_of_blobs, terminals_on_graph
from tests.conftest import make_random_instance


class TestAllAlgorithmsAgree:
    """Every solver must be feasible; ratio ordering sanity per theory."""

    @pytest.mark.parametrize("seed", range(4))
    def test_full_pipeline(self, seed):
        inst = make_random_instance(seed, n_range=(10, 14))
        opt = steiner_forest_cost(inst)
        if opt == 0:
            pytest.skip("trivial instance")

        results = {
            "moat": moat_growing(inst).solution,
            "rounded": rounded_moat_growing(inst, 0.5).solution,
            "distributed": distributed_moat_growing(inst).solution,
            "sublinear": sublinear_moat_growing(inst, 0.5).solution,
            "randomized": randomized_steiner_forest(
                inst, rng=random.Random(seed)
            ).solution,
            "khan": khan_steiner_forest(
                inst, rng=random.Random(seed)
            ).solution,
            "spanner": spanner_steiner_forest(inst).solution,
        }
        for name, solution in results.items():
            solution.assert_feasible(inst)
        assert results["moat"].weight <= 2 * opt
        assert results["rounded"].weight <= 2.5 * opt
        assert results["distributed"].weight == results["moat"].weight
        assert results["sublinear"].weight == results["rounded"].weight

    def test_grid_workload(self):
        inst = grid_instance(4, 5, 3, random.Random(2))
        det = distributed_moat_growing(inst)
        det.solution.assert_feasible(inst)
        rand = randomized_steiner_forest(inst, rng=random.Random(2))
        rand.solution.assert_feasible(inst)

    def test_ring_of_blobs_workload(self):
        rng = random.Random(8)
        graph = ring_of_blobs(5, 3, rng)
        inst = terminals_on_graph(graph, 2, 2, rng)
        det = distributed_moat_growing(inst)
        det.solution.assert_feasible(inst)


class TestRoundComplexityOrdering:
    def test_deterministic_rounds_grow_with_k(self):
        """O(ks + t): more components, more phases, more rounds —
        measured on a fixed graph with increasing k."""
        rng = random.Random(6)
        graph = ring_of_blobs(6, 3, rng)
        rounds = []
        for k in (1, 3):
            inst = terminals_on_graph(graph, k, 2, random.Random(4))
            rounds.append(distributed_moat_growing(inst).rounds)
        assert rounds[0] <= rounds[1]

    def test_randomized_beats_khan_at_high_k(self):
        """Abstract's headline: Õ(s + k) vs Õ(sk) — at sufficiently many
        components on an s-heavy graph, the improved selection wins."""
        rng = random.Random(10)
        graph = ring_of_blobs(8, 3, rng)
        inst = terminals_on_graph(graph, 6, 2, random.Random(3))
        ours = randomized_steiner_forest(
            inst, rng=random.Random(1), force_truncation=False
        )
        khan = khan_steiner_forest(inst, rng=random.Random(1))
        # Same embedding machinery; ours pipelines per destination. The
        # routing-round comparison is the paper's claim; total rounds also
        # include shared construction overhead, so compare routing rounds.
        assert (
            ours.first_stage.routing_rounds
            <= khan.first_stage.routing_rounds
        )
