"""Tests for Cole–Vishkin colouring and proposal matching."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.matching import (
    cole_vishkin_coloring,
    maximal_matching_from_proposals,
)


def _proper(colors, successor):
    for v, succ in successor.items():
        if succ is not None and succ != v:
            if colors[v] == colors[succ]:
                return False
    return True


class TestColoring:
    def test_path_coloring_proper(self):
        successor = {i: i + 1 for i in range(9)}
        successor[9] = None
        colors, _ = cole_vishkin_coloring(successor)
        assert _proper(colors, successor)
        assert max(colors.values()) <= 5

    def test_cycle_coloring_proper(self):
        successor = {i: (i + 1) % 7 for i in range(7)}
        colors, _ = cole_vishkin_coloring(successor)
        assert _proper(colors, successor)

    def test_star_pseudoforest(self):
        successor = {i: 0 for i in range(1, 6)}
        successor[0] = None
        colors, _ = cole_vishkin_coloring(successor)
        assert _proper(colors, successor)

    def test_iterations_logstar_small(self):
        successor = {i: i + 1 for i in range(99)}
        successor[99] = None
        _, iterations = cole_vishkin_coloring(successor)
        assert iterations <= 12  # log* 100 plus the shift-down passes

    @given(st.integers(2, 60), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_random_functional_graphs_proper(self, n, seed):
        rng = random.Random(seed)
        successor = {}
        for v in range(n):
            choice = rng.randrange(n + 1)
            successor[v] = None if choice == n or choice == v else choice
        colors, _ = cole_vishkin_coloring(successor)
        assert _proper(colors, successor)
        assert max(colors.values()) <= 5


class TestMatching:
    def test_simple_mutual_proposal(self):
        matching, _ = maximal_matching_from_proposals({1: 2, 2: 1})
        assert matching == {(1, 2)}

    def test_chain_breaks_into_matching(self):
        matching, _ = maximal_matching_from_proposals({1: 2, 2: 3, 3: 4})
        # Matched pairs must be disjoint.
        used = [v for pair in matching for v in pair]
        assert len(used) == len(set(used))
        assert len(matching) >= 1

    def test_proposal_to_non_proposer_excluded(self):
        # 2 is not a proposer, so edge (1, 2) is not in F'_C.
        matching, _ = maximal_matching_from_proposals({1: 2})
        assert matching == set()

    def test_maximality(self):
        """No two unmatched vertices may share a proposal edge."""
        rng = random.Random(9)
        for _ in range(20):
            n = rng.randint(2, 30)
            proposal = {}
            for v in range(n):
                w = rng.randrange(n)
                if w != v:
                    proposal[v] = w
            matching, _ = maximal_matching_from_proposals(proposal)
            matched = {v for pair in matching for v in pair}
            for v, w in proposal.items():
                if w in proposal:  # edge of F'_C
                    assert v in matched or w in matched, (proposal, matching)

    def test_matching_disjoint(self):
        rng = random.Random(4)
        proposal = {v: (v + 1) % 20 for v in range(20)}
        matching, _ = maximal_matching_from_proposals(proposal)
        used = [v for pair in matching for v in pair]
        assert len(used) == len(set(used))
