"""The telemetry subsystem: bus mechanics, the observe-only invariant,
the trace/bench CLI, and TraceRecorder resource discipline.

Four contracts are pinned here:

1. **Telemetry observes, never participates** — with the bus detached,
   engine records and result-store cache keys are byte-identical to the
   seed (the schema v1–v5 key for an unprofiled job is pinned as a
   literal), and attaching a bus changes no logical output.
2. **The bridge is exact** — ``LedgerBridge`` phase events reproduce the
   ledger's own per-phase accounting, an inner ``PhaseProfiler`` riding
   the bridge collects exactly what it would standalone, and
   ``PhaseProfiler.from_events`` rebuilds the same table from the
   stream.
3. **Bounded overhead** — an instrumented pipeline run at n=64 stays
   inside a pinned event-count envelope (phase-granular narration, not
   per-message) and a generous wall-time envelope.
4. **Traces are resource-safe** — ``TraceRecorder`` closes its stream on
   simulator completion *and* on error, closing is idempotent, and the
   streaming and ``dump`` encodings are identical.
"""

import json
import random
import time

import pytest

from repro.cli import main
from repro.congest.run import CongestRun
from repro.congest.simulator import FloodMaxLeaderElection, NodeProgram, Simulator
from repro.core.distributed import distributed_moat_growing
from repro.engine.jobs import Job
from repro.engine.registry import ScenarioSpec
from repro.engine.runner import run_spec
from repro.netmodel import TraceRecorder
from repro.perf import PhaseProfiler, make_ledger_run
from repro.telemetry import (
    CallbackSink,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    RunManifest,
    Telemetry,
    check_benches,
    diff_streams,
    format_progress,
    read_events,
    render_summary,
)
from repro.workloads import random_connected_graph, random_instance

#: The schema v1–v5 cache key of the canonical unprofiled legacy job
#: (same job as tests/test_perf.py's identity pin). Telemetry must never
#: move this: the bus is not part of job identity.
PINNED_LEGACY_KEY = (
    "bc33f70f1c72120772a76c6e3ff382aa9b7b178355ef717cbb6d3249801f7e4e"
)

LEGACY_JOB = {
    "scenario": "s",
    "family": "gnp",
    "family_params": {"n": 12, "p": 0.3},
    "k": 2,
    "component_size": 2,
    "algorithm": "moat",
    "algo_params": {},
    "seed_index": 0,
    "exact": False,
}


def _memory_bus(**manifest_kwargs):
    sink = MemorySink()
    bus = Telemetry(manifest=RunManifest(**manifest_kwargs), sinks=[sink])
    return bus, sink


def _spec(name="tele-spec", algorithms=("distributed",)):
    return ScenarioSpec(
        name=name,
        family="gnp",
        algorithms=tuple(algorithms),
        grid={"n": [12], "p": [0.3], "k": 2, "component_size": 2},
        seeds=2,
    )


def _instrumented_pipeline(n, backend="reference"):
    """One distributed pipeline run narrated onto a fresh bus; returns
    (events, result, run)."""
    instance = random_instance(n, 3, random.Random(n), p=0.35)
    bus, sink = _memory_bus(workload={"n": n})
    with bus:
        run = make_ledger_run(backend, instance.graph)
        bridge = bus.attach_ledger(run)
        result = distributed_moat_growing(instance, run=run)
        bridge.finish()
    return sink.events, result, run


def _logical_profile(table):
    """The deterministic columns of a PhaseProfiler.to_dict()."""
    return [
        (row["phase"], row["rounds"], row["messages"])
        for row in table["phases"]
    ]


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        metrics.counter("c").inc(4)
        metrics.gauge("g").set(2.5)
        metrics.histogram("h").observe(1.0)
        metrics.histogram("h").observe(3.0)
        snap = metrics.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_name_bound_to_one_kind(self):
        metrics = MetricsRegistry()
        metrics.counter("x")
        with pytest.raises(TypeError):
            metrics.gauge("x")


class TestTelemetryBus:
    def test_manifest_first_and_envelope_stamps(self):
        bus, sink = _memory_bus(workload={"w": 1})
        bus.emit("ping", value=7)
        bus.close()
        kinds = [e["event"] for e in sink.events]
        assert kinds[0] == "manifest"
        assert kinds[-1] == "run_end"
        run_id = bus.run_id
        assert all(e["run_id"] == run_id for e in sink.events)
        assert [e["seq"] for e in sink.events] == sorted(
            e["seq"] for e in sink.events
        )
        ping = next(e for e in sink.events if e["event"] == "ping")
        assert ping["value"] == 7

    def test_span_nesting_and_error_status(self):
        bus, sink = _memory_bus()
        with bus.span("outer"):
            with bus.span("inner"):
                pass
        with pytest.raises(RuntimeError):
            with bus.span("boom"):
                raise RuntimeError("x")
        ends = {
            e["span"]: e["status"]
            for e in sink.events
            if e["event"] == "span_end"
        }
        assert ends == {"outer": "ok", "outer/inner": "ok", "boom": "error"}

    def test_close_idempotent_and_metrics_snapshot(self):
        bus, sink = _memory_bus()
        bus.counter("n").inc(3)
        bus.close()
        bus.close()
        assert [e["event"] for e in sink.events].count("run_end") == 1
        metrics = next(e for e in sink.events if e["event"] == "metrics")
        assert metrics["counters"]["n"] == 3

    def test_jsonl_sink_roundtrip_and_reopen_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        bus = Telemetry(sinks=[sink])
        bus.emit("one")
        sink.close()
        bus.emit("two")
        bus.close()
        kinds = [e["event"] for e in read_events(path)]
        assert kinds == ["manifest", "one", "two", "run_end"]

    def test_callback_sink_renders_legacy_lines_only(self):
        lines = []
        bus = Telemetry(sinks=[CallbackSink(lines.append)])
        bus.emit(
            "sweep_start", scenario="s", jobs=4, cache_hits=1, to_run=3
        )
        bus.emit("phase", phase="setup", rounds=1, messages=2, bits=48)
        bus.emit(
            "job_end",
            status="completed",
            scenario="s",
            done=2,
            total=3,
            algorithm="moat",
            wall_time=0.25,
        )
        bus.close()
        assert lines == [
            "[s] 4 jobs: 1 cache hits, 3 to run",
            "[s] job 2/3 done: moat (0.250s)",
        ]

    def test_format_progress_failed_job(self):
        line = format_progress(
            {
                "event": "job_end",
                "status": "failed",
                "scenario": "s",
                "done": 1,
                "total": 2,
                "algorithm": "moat",
                "error": "ValueError('x')",
            }
        )
        assert line == "[s] job 1/2 FAILED: moat (ValueError('x'))"


class TestLedgerBridge:
    def test_phase_events_match_ledger_accounting(self):
        graph = random_connected_graph(8, 0.5, random.Random(1))
        run = CongestRun(graph)
        bus, sink = _memory_bus()
        bridge = bus.attach_ledger(run)
        run.set_phase("a")
        run.tick()
        run.charge_messages([(u, v) for u, v, _ in graph.edges()])
        run.set_phase("b")
        run.tick()
        run.tick()
        bridge.finish()
        bus.close()
        phases = {
            e["phase"]: e for e in sink.events if e["event"] == "phase"
        }
        assert phases["a"]["rounds"] == 1
        assert phases["a"]["messages"] == run.messages
        assert phases["a"]["bits"] == run.messages * run.bandwidth_bits
        assert phases["b"]["rounds"] == 2
        assert phases["b"]["messages"] == 0
        metrics = next(e for e in sink.events if e["event"] == "metrics")
        assert metrics["counters"]["ledger.rounds"] == run.rounds
        assert metrics["counters"]["ledger.messages"] == run.messages

    def test_bridge_does_not_change_solver_output(self):
        instance = random_instance(16, 3, random.Random(7), p=0.4)
        plain = distributed_moat_growing(
            instance, run=CongestRun(instance.graph)
        )
        events, bridged, run = (None, None, None)
        bus, sink = _memory_bus()
        with bus:
            run = CongestRun(instance.graph)
            bus.attach_ledger(run)
            bridged = distributed_moat_growing(instance, run=run)
        assert plain.solution.weight == bridged.solution.weight
        assert sorted(plain.solution.edges, key=repr) == sorted(
            bridged.solution.edges, key=repr
        )
        assert plain.rounds == bridged.rounds
        assert plain.run.messages == bridged.run.messages
        assert dict(plain.run.phase_rounds) == dict(bridged.run.phase_rounds)

    def test_inner_profiler_composes_and_from_events_matches(self):
        instance = random_instance(16, 3, random.Random(7), p=0.4)
        run = CongestRun(instance.graph)
        inner = PhaseProfiler()
        inner.attach(run)
        bus, sink = _memory_bus()
        with bus:
            bridge = bus.attach_ledger(run)
            distributed_moat_growing(instance, run=run)
            bridge.finish()
        # The wrapped profiler collected through the bridge; the stream
        # rebuilds the same logical table. The profiler splits charges
        # into span sub-frames ("phase-1/bellman-ford") while the bus
        # narrates at set_phase granularity, so aggregate by top-level
        # phase before comparing.
        rebuilt = PhaseProfiler.from_events(sink.events)
        aggregated = {}
        for row in inner.to_dict()["phases"]:
            top = row["phase"].split("/")[0]
            acc = aggregated.setdefault(top, [0, 0])
            acc[0] += row["rounds"]
            acc[1] += row["messages"]
        inner_rows = {
            (phase, acc[0], acc[1]) for phase, acc in aggregated.items()
        }
        assert inner_rows == set(_logical_profile(rebuilt.to_dict()))
        phase_rounds = {
            r["phase"]: r["rounds"] for r in rebuilt.to_dict()["phases"]
        }
        assert phase_rounds == dict(run.phase_rounds)


class TestDetachedIdentity:
    def test_legacy_cache_key_is_pinned(self):
        assert Job.from_dict(LEGACY_JOB).key == PINNED_LEGACY_KEY

    def test_job_identity_has_no_telemetry_fields(self):
        identity = Job.from_dict(LEGACY_JOB).identity()
        assert "telemetry" not in identity
        assert "run_id" not in identity

    def test_run_spec_records_identical_with_and_without_bus(self):
        spec = _spec()
        detached = run_spec(spec, store=None, parallel=False)
        bus, sink = _memory_bus()
        with bus:
            attached = run_spec(
                spec, store=None, parallel=False, telemetry=bus
            )
        assert detached.executed == attached.executed

        def logical(records):
            rows = []
            for record in records:
                row = json.loads(json.dumps(record))
                row["metrics"].pop("wall_time")
                rows.append(row)
            return rows

        assert logical(detached.records) == logical(attached.records)
        kinds = [e["event"] for e in sink.events]
        assert "sweep_start" in kinds and "sweep_end" in kinds
        assert kinds.count("job_end") == detached.executed

    def test_run_spec_cache_events_and_counters(self, tmp_path):
        from repro.engine.store import ResultStore

        spec = _spec("tele-cache")
        store = ResultStore(tmp_path / "store.jsonl")
        run_spec(spec, store=store, parallel=False)
        bus, sink = _memory_bus()
        with bus:
            stats = run_spec(
                spec, store=store, parallel=False, telemetry=bus
            )
        assert stats.cached == stats.total and stats.executed == 0
        kinds = [e["event"] for e in sink.events]
        assert kinds.count("job_cached") == stats.cached
        metrics = next(e for e in sink.events if e["event"] == "metrics")
        assert metrics["counters"]["engine.cache.hit"] == stats.cached
        assert metrics["counters"]["engine.store.rows_read"] == stats.cached
        assert "engine.store.rows_written" not in metrics["counters"]


class TestOverheadEnvelope:
    def test_attached_pipeline_event_count_envelope_n64(self):
        events, result, run = _instrumented_pipeline(64)
        # Phase-granular narration: manifest + a handful of phase
        # events + metrics/run_end — never per-message or per-round.
        assert 5 <= len(events) <= 40
        phase_events = [e for e in events if e["event"] == "phase"]
        assert 2 <= len(phase_events) <= 20
        assert sum(e["rounds"] for e in phase_events) == result.rounds
        assert sum(e["messages"] for e in phase_events) == run.messages

    def test_attached_wall_time_within_envelope_n64(self):
        instance = random_instance(64, 3, random.Random(64), p=0.35)

        def solve(attach):
            run = CongestRun(instance.graph)
            bus = Telemetry(sinks=[MemorySink()]) if attach else None
            started = time.perf_counter()
            if bus is not None:
                bus.attach_ledger(run)
            distributed_moat_growing(instance, run=run)
            elapsed = time.perf_counter() - started
            if bus is not None:
                bus.close()
            return elapsed

        solve(False)  # warm caches
        detached = min(solve(False) for _ in range(3))
        attached = min(solve(True) for _ in range(3))
        # Generous CI-proof envelope: the bridge adds O(phases) work.
        assert attached <= detached * 5 + 0.5


class _Boom(NodeProgram):
    def on_start(self, ctx):
        for v in ctx.neighbors:
            ctx.send(v, "x")

    def on_round(self, ctx, inbox):
        raise RuntimeError("boom")


class TestTraceRecorder:
    def test_context_manager_closes_stream(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path=path) as trace:
            trace.record_round(0, 1, 1, 0, 32)
            assert trace._handle is not None
        assert trace._handle is None
        assert len(read_events(path)) == 1

    def test_close_idempotent_and_reopen_appends(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = TraceRecorder(path=path)
        trace.record_round(0, 1, 1, 0, 32)
        trace.close()
        trace.close()
        trace.record_round(1, 2, 2, 0, 64)
        trace.close()
        rounds = [e["round"] for e in read_events(path)]
        assert rounds == [0, 1]

    def test_simulator_completion_closes_streaming_trace(self, tmp_path):
        graph = random_connected_graph(6, 0.6, random.Random(3))
        trace = TraceRecorder(path=tmp_path / "t.jsonl")
        sim = Simulator(
            graph,
            {v: FloodMaxLeaderElection() for v in graph.nodes},
            trace=trace,
        )
        sim.run_to_completion()
        assert trace._handle is None
        assert len(read_events(tmp_path / "t.jsonl")) == len(trace.events)

    def test_simulator_error_closes_streaming_trace(self, tmp_path):
        graph = random_connected_graph(6, 0.6, random.Random(3))
        trace = TraceRecorder(path=tmp_path / "t.jsonl")
        sim = Simulator(
            graph, {v: _Boom() for v in graph.nodes}, trace=trace
        )
        with pytest.raises(RuntimeError):
            sim.run_to_completion()
        assert trace._handle is None

    def test_simulator_close_closes_trace(self, tmp_path):
        graph = random_connected_graph(6, 0.6, random.Random(3))
        trace = TraceRecorder(path=tmp_path / "t.jsonl")
        sim = Simulator(
            graph,
            {v: FloodMaxLeaderElection() for v in graph.nodes},
            trace=trace,
        )
        sim.start()
        sim.step()
        sim.close()
        assert trace._handle is None

    def test_dump_matches_streamed_encoding(self, tmp_path):
        streamed = tmp_path / "stream.jsonl"
        trace = TraceRecorder(path=streamed)
        trace.record_send(0, 1, 2, "hello", [1])
        trace.record_lost(1, 2, 1, "crashed")
        trace.record_round(1, 1, 1, 0, 40)
        trace.close()
        dumped = tmp_path / "dump.jsonl"
        trace.dump(dumped)
        assert streamed.read_text() == dumped.read_text()
        loaded = TraceRecorder.load(dumped)
        assert loaded.events == trace.events

    def test_run_id_stamped_and_forwarded_to_bus(self):
        bus, sink = _memory_bus()
        trace = TraceRecorder(telemetry=bus)
        assert trace.run_id == bus.run_id
        trace.record_round(0, 3, 3, 0, 96)
        bus.close()
        assert trace.events[0]["run_id"] == bus.run_id
        forwarded = next(
            e for e in sink.events if e["event"] == "trace.round"
        )
        assert forwarded["sent"] == 3 and forwarded["bits"] == 96


class TestSummaryAndDiff:
    def test_render_summary_totals(self):
        events, result, run = _instrumented_pipeline(24)
        text = render_summary(events, title="t")
        assert "total" in text
        assert str(result.rounds) in text
        assert str(run.messages) in text

    def test_diff_backends_identical(self):
        events_a, _, _ = _instrumented_pipeline(24, "reference")
        events_b, _, _ = _instrumented_pipeline(24, "flatarray")
        identical, report = diff_streams(events_a, events_b)
        assert identical
        assert "logical metrics identical" in report

    def test_diff_flags_divergence_and_missing_phase(self):
        base = [
            {"event": "phase", "phase": "a", "rounds": 1, "messages": 2, "bits": 64},
            {"event": "phase", "phase": "b", "rounds": 3, "messages": 0, "bits": 0},
        ]
        other = [
            {"event": "phase", "phase": "a", "rounds": 2, "messages": 2, "bits": 64},
        ]
        identical, report = diff_streams(base, other)
        assert not identical
        assert "DIFFERS" in report and "MISSING in" in report


class TestCli:
    def test_trace_summary_fresh_run(self, capsys):
        assert main(["trace", "summary", "--n", "24"]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out and "total" in out

    def test_trace_summary_from_file(self, tmp_path, capsys):
        events, _, _ = _instrumented_pipeline(24)
        path = tmp_path / "events.jsonl"
        path.write_text(
            "\n".join(json.dumps(e, default=repr) for e in events) + "\n"
        )
        assert main(["trace", "summary", str(path)]) == 0
        assert "total" in capsys.readouterr().out

    def test_trace_diff_backends_identical(self, capsys):
        code = main(
            ["trace", "diff", "reference", "flatarray", "--n", "24"]
        )
        assert code == 0
        assert "logical metrics identical" in capsys.readouterr().out

    def test_trace_diff_reference_vs_numpy_identical(self, capsys):
        """Differential round trace: the numpy tier's per-phase
        rounds/messages/bits tables equal reference on the same seeded
        scenario (``repro trace diff`` exits 0)."""
        from repro.simbackend import numpy_tier_available

        if not numpy_tier_available():
            pytest.skip("optional numpy extra not installed")
        code = main(
            ["trace", "diff", "reference", "numpy",
             "--n", "24", "--seed", "7"]
        )
        assert code == 0
        assert "logical metrics identical" in capsys.readouterr().out

    def test_trace_diff_numpy_sublinear_identical(self, capsys):
        from repro.simbackend import numpy_tier_available

        if not numpy_tier_available():
            pytest.skip("optional numpy extra not installed")
        code = main(
            ["trace", "diff", "reference", "numpy",
             "--n", "20", "--algorithm", "sublinear"]
        )
        assert code == 0
        assert "logical metrics identical" in capsys.readouterr().out

    def test_trace_diff_files_differ_exits_nonzero(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text(
            json.dumps(
                {"event": "phase", "phase": "x", "rounds": 1,
                 "messages": 1, "bits": 32}
            )
            + "\n"
        )
        b.write_text(
            json.dumps(
                {"event": "phase", "phase": "x", "rounds": 2,
                 "messages": 1, "bits": 32}
            )
            + "\n"
        )
        assert main(["trace", "diff", str(a), str(b)]) == 1
        assert "DIFFER" in capsys.readouterr().out

    def test_trace_export_filters_kinds(self, tmp_path, capsys):
        events, _, _ = _instrumented_pipeline(24)
        source = tmp_path / "events.jsonl"
        source.write_text(
            "\n".join(json.dumps(e, default=repr) for e in events) + "\n"
        )
        out = tmp_path / "phases.jsonl"
        code = main(
            ["trace", "export", str(source), "--kind", "phase",
             "--out", str(out)]
        )
        assert code == 0
        exported = read_events(out)
        assert exported and all(e["event"] == "phase" for e in exported)

    def _bench_file(self, tmp_path, rounds_delta=0):
        from repro.telemetry.benchcheck import _measure_pipeline

        workload = {"algorithm": "distributed", "k": 3, "p": 0.35}
        measured = _measure_pipeline(workload, 24, "reference")
        path = tmp_path / "BENCH_small.json"
        path.write_text(
            json.dumps(
                {
                    "experiment": "e18-profile",
                    "workload": workload,
                    "entries": [
                        {
                            "n": 24,
                            "backend": "reference",
                            "seconds": measured["seconds"],
                            "rounds": measured["rounds"] + rounds_delta,
                            "messages": measured["messages"],
                            "weight": measured["weight"],
                        }
                    ],
                }
            )
        )
        return path

    def test_bench_check_passes_on_honest_file(self, tmp_path, capsys):
        path = self._bench_file(tmp_path)
        assert main(["bench", "check", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "1/1 entries pass" in out

    def test_bench_check_fails_on_logical_drift(self, tmp_path, capsys):
        path = self._bench_file(tmp_path, rounds_delta=1)
        assert main(["bench", "check", "--file", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_check_api_telemetry_stream(self, tmp_path):
        path = self._bench_file(tmp_path)
        bus, sink = _memory_bus()
        with bus:
            report = check_benches([path], telemetry=bus)
        assert report.ok
        checks = [e for e in sink.events if e["event"] == "bench_check"]
        assert len(checks) == 1 and checks[0]["ok"]

    def _numpy_bench_file(self, tmp_path, entries):
        path = tmp_path / "BENCH_numpy_small.json"
        path.write_text(
            json.dumps(
                {
                    "experiment": "e22-numpy",
                    "workload": {
                        "degree": 4, "num_sources": 2, "num_items": 4,
                    },
                    "entries": entries,
                }
            )
        )
        return path

    def test_bench_check_e22_driver_passes(self, tmp_path, capsys):
        from repro.telemetry.benchcheck import _measure_primitives

        workload = {"degree": 4, "num_sources": 2, "num_items": 4}
        measured = _measure_primitives(workload, 16, "reference")
        path = self._numpy_bench_file(
            tmp_path,
            [
                {
                    "n": 16,
                    "backend": "reference",
                    "seconds": measured["seconds"],
                    "rounds": measured["rounds"],
                    "messages": measured["messages"],
                }
            ],
        )
        assert main(["bench", "check", "--file", str(path)]) == 0
        assert "1/1 entries pass" in capsys.readouterr().out

    def test_bench_check_skips_numpy_entries_without_the_extra(
        self, tmp_path, capsys, monkeypatch
    ):
        # A committed numpy-tier entry must not fail the gate in the
        # dependency-free environment — it is skipped, not measured.
        monkeypatch.setattr(
            "repro.simbackend.numpy_tier_available", lambda: False
        )
        path = self._numpy_bench_file(
            tmp_path,
            [
                {
                    "n": 16,
                    "backend": "numpy",
                    "seconds": 0.01,
                    "rounds": 1,
                    "messages": 1,
                }
            ],
        )
        assert main(["bench", "check", "--file", str(path)]) == 0
        assert "1 skipped" in capsys.readouterr().out

    def test_sweep_quiet_suppresses_progress(self, tmp_path, capsys):
        code = main(
            ["sweep", "--scenario", "grid-rounds", "--serial",
             "--no-store", "--quiet"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "jobs:" not in captured.err
        assert "scenario grid-rounds" in captured.out

    def test_sweep_verbose_emits_structured_events(self, capsys):
        code = main(
            ["sweep", "--scenario", "grid-rounds", "--serial",
             "--no-store", "--verbose"]
        )
        assert code == 0
        err = capsys.readouterr().err
        # Legacy lines and structured events interleave.
        assert "[grid-rounds] 8 jobs: 0 cache hits, 8 to run" in err
        assert "· sweep_end" in err

    def test_sweep_telemetry_writes_jsonl_stream(self, tmp_path, capsys):
        stream = tmp_path / "run.jsonl"
        code = main(
            ["sweep", "--scenario", "grid-rounds", "--serial",
             "--no-store", "--telemetry", str(stream)]
        )
        assert code == 0
        kinds = [e["event"] for e in read_events(stream)]
        for expected in ("manifest", "sweep_start", "job_end", "run_end"):
            assert expected in kinds
        # The default console still renders the legacy progress lines.
        assert "job 8/8 done" in capsys.readouterr().err

    def test_quiet_and_verbose_conflict(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--scenario", "grid-rounds", "--quiet",
                  "--verbose"])
