"""The solver daemon: protocol goldens, service invariants, crash recovery.

The transcript tests drive :meth:`ServeServer.handle_connection` through
an in-memory transport (a real ``asyncio.StreamReader`` fed by hand and
a buffer-backed writer) — no sockets, fully deterministic frame
sequences. The service tests exercise the real warm
``ProcessPoolExecutor`` (including killing its workers), and one
end-to-end test runs the daemon on a real unix socket against the
blocking :class:`ServeClient`.
"""

import asyncio
import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.engine.jobs import expand_jobs
from repro.engine.registry import ScenarioSpec
from repro.engine.runner import MAX_JOB_ATTEMPTS, _run_jobs, execute_job
from repro.engine.store import ResultStore
from repro.exceptions import WorkerCrashError
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.loadgen import single_job_spec
from repro.serve.server import ServeServer, TokenBucket
from repro.serve.service import (
    BadRequestError,
    OverloadedError,
    ShuttingDownError,
    SolverService,
    strip_volatile,
)
from repro.telemetry import MemorySink, RunManifest, Telemetry

# ---------------------------------------------------------------------------
# pool workers (module-level: they must survive the fork into the pool)
# ---------------------------------------------------------------------------

CRASH_MARKER_ENV = "REPRO_TEST_CRASH_MARKER"


def _slow_worker(payload):
    time.sleep(0.25)
    return execute_job(payload)


def _crash_once_worker(payload):
    """Dies (hard, like OOM) while the marker file exists; the marker is
    removed first, so the retry in a fresh pool succeeds."""
    marker = Path(os.environ[CRASH_MARKER_ENV])
    if marker.exists():
        marker.unlink()
        os._exit(1)
    return execute_job(payload)


def _poison_worker(payload):
    """Dies every time a poison-named job reaches it; healthy otherwise."""
    if payload["scenario"].startswith("poison"):
        os._exit(1)
    return execute_job(payload)


def _spec(name, **overrides):
    data = single_job_spec(name)
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------

def test_frame_round_trip():
    frame = protocol.submit_frame("r1", spec={"name": "x"}, stream=True)
    assert protocol.decode_frame(protocol.encode_frame(frame)) == frame
    assert protocol.encode_frame(frame).endswith(b"\n")


@pytest.mark.parametrize(
    "line",
    [b"not json\n", b"[1, 2]\n", b'{"no_type": 1}\n'],
)
def test_decode_rejects_malformed(line):
    with pytest.raises(protocol.ProtocolError) as err:
        protocol.decode_frame(line)
    assert err.value.code == protocol.E_MALFORMED
    assert not err.value.fatal


def test_decode_oversized_frame_is_fatal():
    line = b'{"type": "' + b"x" * protocol.MAX_FRAME_BYTES + b'"}\n'
    with pytest.raises(protocol.ProtocolError) as err:
        protocol.decode_frame(line)
    assert err.value.fatal


def test_token_bucket_with_injected_clock():
    now = [0.0]
    bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: now[0])
    assert bucket.take() and bucket.take()
    assert not bucket.take()  # burst spent, no time has passed
    now[0] = 1.0
    assert bucket.take()  # one second refilled one token
    assert not bucket.take()


# ---------------------------------------------------------------------------
# in-memory transport for golden transcripts
# ---------------------------------------------------------------------------

class MemoryWriter:
    """The writer half of the in-memory transport: collects frames."""

    def __init__(self):
        self.buffer = bytearray()
        self.closed = False

    def write(self, data):
        self.buffer.extend(data)

    async def drain(self):
        pass

    def close(self):
        self.closed = True

    async def wait_closed(self):
        pass

    def frames(self):
        return [
            json.loads(line)
            for line in bytes(self.buffer).decode("utf-8").splitlines()
        ]


async def converse(server, frames):
    """Feed client frames (dicts, or raw bytes for malformed lines)
    through one connection; returns every server frame in order."""
    reader = asyncio.StreamReader()
    for frame in frames:
        reader.feed_data(
            frame if isinstance(frame, bytes) else protocol.encode_frame(frame)
        )
    reader.feed_eof()
    writer = MemoryWriter()
    await server.handle_connection(reader, writer)
    assert writer.closed
    return writer.frames()


def run(coroutine):
    return asyncio.run(coroutine)


def cold_server(**service_kwargs):
    """A server over an unstarted service — handshake-layer tests only."""
    return ServeServer(SolverService(store=None, **service_kwargs))


# ---------------------------------------------------------------------------
# handshake goldens
# ---------------------------------------------------------------------------

def test_handshake_welcome():
    replies = run(converse(cold_server(), [protocol.hello_frame("me")]))
    assert [f["type"] for f in replies] == ["welcome"]
    assert replies[0]["protocol"] == protocol.PROTOCOL_VERSION


def test_handshake_version_mismatch():
    replies = run(converse(
        cold_server(), [protocol.hello_frame("me", protocol=99)]
    ))
    assert [f["type"] for f in replies] == ["error"]
    assert replies[0]["code"] == protocol.E_PROTOCOL
    assert "99" in replies[0]["message"]


def test_handshake_required_before_anything_else():
    replies = run(converse(cold_server(), [protocol.ping_frame("r1")]))
    assert [f["type"] for f in replies] == ["error"]
    assert replies[0]["code"] == protocol.E_PROTOCOL


def test_malformed_frame_keeps_the_connection():
    replies = run(converse(cold_server(), [
        protocol.hello_frame("me"),
        b"this is not json\n",
        protocol.ping_frame("r2"),
    ]))
    assert [f["type"] for f in replies] == ["welcome", "error", "pong"]
    assert replies[1]["code"] == protocol.E_MALFORMED
    assert replies[2]["id"] == "r2"


def test_unknown_frame_type_is_bad_request():
    replies = run(converse(cold_server(), [
        protocol.hello_frame("me"),
        {"type": "frobnicate", "id": "r1"},
    ]))
    assert replies[1]["code"] == protocol.E_BAD_REQUEST
    assert replies[1]["id"] == "r1"


# ---------------------------------------------------------------------------
# submit goldens (real warm pool, single worker)
# ---------------------------------------------------------------------------

async def _with_service(body, **kwargs):
    service = SolverService(store=None, max_workers=1, **kwargs)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.close(drain=False)


def test_golden_miss_with_progress_stream():
    spec_dict = single_job_spec("serve-miss")

    async def body(service):
        server = ServeServer(service)
        return await converse(server, [
            protocol.hello_frame("me"),
            protocol.submit_frame("r1", spec=spec_dict, stream=True),
        ])

    replies = run(_with_service(body))
    assert [f["type"] for f in replies] == [
        "welcome", "event", "event", "event", "result",
    ]
    kinds = [f["event"]["event"] for f in replies[1:4]]
    assert kinds == ["job_queued", "job_start", "job_end"]
    assert all(f["id"] == "r1" for f in replies[1:])
    result = replies[-1]
    assert (result["executed"], result["cached"], result["shared"]) == (1, 0, 0)
    assert len(result["records"]) == 1


def test_golden_cache_hit():
    spec_dict = single_job_spec("serve-hit")

    async def body(service):
        await service.submit(ScenarioSpec.from_dict(spec_dict))  # pre-warm
        server = ServeServer(service)
        return await converse(server, [
            protocol.hello_frame("me"),
            protocol.submit_frame("r1", spec=spec_dict, stream=True),
        ])

    replies = run(_with_service(body))
    assert [f["type"] for f in replies] == ["welcome", "event", "result"]
    assert replies[1]["event"]["event"] == "job_cached"
    assert replies[-1]["cached"] == 1 and replies[-1]["executed"] == 0


def test_golden_bad_requests():
    async def body(service):
        server = ServeServer(service)
        return await converse(server, [
            protocol.hello_frame("me"),
            protocol.submit_frame("r1", spec={"garbage": True}),
            protocol.submit_frame("r2", scenario="no-such-scenario"),
            {"type": "submit", "id": "r3"},  # neither spec nor scenario
        ])

    replies = run(_with_service(body))
    assert [f["type"] for f in replies] == ["welcome", "error", "error", "error"]
    assert {f["code"] for f in replies[1:]} == {protocol.E_BAD_REQUEST}
    assert [f["id"] for f in replies[1:]] == ["r1", "r2", "r3"]


def test_golden_rate_limited():
    spec_dict = single_job_spec("serve-rate")

    async def body(service):
        await service.submit(ScenarioSpec.from_dict(spec_dict))
        server = ServeServer(service, rate=0.0, burst=1.0, clock=lambda: 0.0)
        return await converse(server, [
            protocol.hello_frame("me"),
            protocol.submit_frame("r1", spec=spec_dict),
            protocol.submit_frame("r2", spec=spec_dict),
        ])

    replies = run(_with_service(body))
    by_id = {f.get("id"): f for f in replies}
    assert by_id["r1"]["type"] == "result"
    assert by_id["r2"]["type"] == "error"
    assert by_id["r2"]["code"] == protocol.E_RATE_LIMITED


def test_golden_shutdown_rejects_submits():
    async def body(service):
        await service.drain()
        server = ServeServer(service)
        return await converse(server, [
            protocol.hello_frame("me"),
            protocol.submit_frame("r1", spec=single_job_spec("serve-late")),
        ])

    replies = run(_with_service(body))
    assert replies[1]["type"] == "error"
    assert replies[1]["code"] == protocol.E_SHUTDOWN


# ---------------------------------------------------------------------------
# service invariants
# ---------------------------------------------------------------------------

def test_served_records_byte_identical_to_direct_runs(tmp_path):
    """The acceptance pin: daemon answers == direct engine runs — same
    keys, same rows (modulo the wall_time measurement), same order."""
    spec = _spec("serve-pin", seeds=2)

    async def body():
        store = ResultStore(tmp_path / "store.jsonl")
        service = SolverService(store=store, max_workers=1)
        await service.start()
        try:
            outcome = await service.submit(spec)
        finally:
            await service.close(drain=False)
        return store, outcome

    store, outcome = run(body())
    direct = [execute_job(job.to_dict()) for job in expand_jobs(spec)]
    assert [strip_volatile(r) for r in outcome.records] == [
        strip_volatile(r) for r in direct
    ]
    assert [r["key"] for r in outcome.records] == [j.key for j in expand_jobs(spec)]
    stored = [strip_volatile(r) for r in ResultStore(store.path).records()]
    assert stored == [strip_volatile(r) for r in direct]


def test_dedup_shares_one_computation():
    spec = _spec("serve-dedup")

    async def body(service):
        first, second = await asyncio.gather(
            service.submit(spec), service.submit(spec)
        )
        return first, second, service.stats

    first, second, stats = run(_with_service(body, worker=_slow_worker))
    assert first.executed + second.executed == 1
    assert first.shared + second.shared == 1
    assert first.records == second.records
    assert stats.deduped == 1 and stats.executed == 1


def test_admission_queue_rejects_over_cap():
    spec = _spec("serve-flood", seeds=4)  # expands to 4 jobs

    async def body(service):
        with pytest.raises(OverloadedError):
            await service.submit(spec)
        assert service.stats.executed == 0

    run(_with_service(body, max_pending=2))


def test_draining_service_rejects_submits():
    async def body(service):
        await service.drain()
        with pytest.raises(ShuttingDownError):
            await service.submit(_spec("serve-drained"))

    run(_with_service(body))


def test_resolve_spec_errors():
    service = SolverService(store=None)
    with pytest.raises(BadRequestError):
        service.resolve_spec({})
    with pytest.raises(BadRequestError):
        service.resolve_spec({"scenario": "no-such-scenario"})
    with pytest.raises(BadRequestError):
        service.resolve_spec({"spec": {"garbage": True}})
    spec = service.resolve_spec({"spec": single_job_spec("ok")})
    assert spec.name == "ok"


def test_service_survives_one_worker_crash(tmp_path, monkeypatch):
    """A worker dying mid-job surfaces as a structured failed job_end
    event, the pool is rebuilt, and the retry answers the request."""
    marker = tmp_path / "crash-now"
    marker.write_text("boom")
    monkeypatch.setenv(CRASH_MARKER_ENV, str(marker))
    events = []

    async def body(service):
        return await service.submit(
            _spec("serve-crash-once"), on_event=events.append
        )

    outcome = run(_with_service(body, worker=_crash_once_worker))
    assert outcome.executed == 1 and len(outcome.records) == 1
    failed = [e for e in events if e.get("status") == "failed"]
    assert len(failed) == 1
    assert failed[0]["will_retry"] is True
    assert "BrokenProcessPool" in failed[0]["error"]
    kinds = [e["event"] for e in events]
    assert kinds == ["job_queued", "job_start", "job_end", "job_end"]
    assert events[-1]["status"] == "completed"


def test_service_gives_up_on_poison_job():
    events = []

    async def body(service):
        with pytest.raises(Exception) as err:
            await service.submit(
                _spec("poison-serve"), on_event=events.append
            )
        assert "process pool" in str(err.value).lower()
        return service.stats

    stats = run(_with_service(body, worker=_poison_worker))
    assert stats.failed == 1
    failed = [e for e in events if e.get("status") == "failed"]
    assert [e["attempt"] for e in failed] == [1, 2]
    assert failed[-1]["will_retry"] is False
    assert stats.pool_rebuilds == MAX_JOB_ATTEMPTS


# ---------------------------------------------------------------------------
# runner robustness (the sweep path, not the daemon)
# ---------------------------------------------------------------------------

def _sink_telemetry():
    sink = MemorySink()
    return Telemetry(manifest=RunManifest(workload={}), sinks=[sink]), sink


def test_runner_retries_after_worker_crash(tmp_path, monkeypatch):
    marker = tmp_path / "crash-now"
    marker.write_text("boom")
    monkeypatch.setenv(CRASH_MARKER_ENV, str(marker))
    jobs = expand_jobs(_spec("runner-crash-once", seeds=2))
    telemetry, sink = _sink_telemetry()
    with telemetry:
        records = _run_jobs(
            jobs, max_workers=1, parallel=True,
            telemetry=telemetry, worker=_crash_once_worker,
        )
    assert [r["key"] for r in records] == [j.key for j in jobs]
    statuses = [
        e["status"] for e in sink.events if e["event"].startswith("job")
    ]
    assert statuses.count("completed") == 2 and "failed" not in statuses


def test_runner_surfaces_poison_job_structurally(monkeypatch):
    """A job that kills its worker twice fails with a structured
    telemetry event and a WorkerCrashError naming it — after the
    healthy jobs completed (the sweep is not wedged)."""
    healthy = expand_jobs(_spec("runner-healthy"))
    poison = expand_jobs(_spec("poison-runner"))
    jobs = healthy + poison  # healthy first: the lone worker finishes it
    telemetry, sink = _sink_telemetry()
    with telemetry:
        with pytest.raises(WorkerCrashError) as err:
            _run_jobs(
                jobs, max_workers=1, parallel=True,
                telemetry=telemetry, worker=_poison_worker,
            )
    assert err.value.job_keys == (poison[0].key,)
    by_status = {}
    for event in sink.events:
        if event["event"].startswith("job"):
            by_status.setdefault(event["status"], []).append(event)
    assert [e["key"] for e in by_status["completed"]] == [healthy[0].key]
    assert [e["key"] for e in by_status["failed"]] == [poison[0].key]
    assert "BrokenProcessPool" in by_status["failed"][0]["error"]


# ---------------------------------------------------------------------------
# the real thing: unix socket, blocking client
# ---------------------------------------------------------------------------

def test_unix_socket_end_to_end(tmp_path):
    socket_path = tmp_path / "serve.sock"
    started = threading.Event()
    handles = {}

    def serve():
        async def main():
            service = SolverService(store=None, max_workers=1)
            await service.start()
            server = ServeServer(service)
            await server.start_unix(str(socket_path))
            stop = asyncio.Event()
            handles["stop"] = stop
            handles["loop"] = asyncio.get_running_loop()
            started.set()
            await server.serve_until(stop)

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert started.wait(30)
    try:
        spec_dict = single_job_spec("socket-e2e")
        events = []
        with ServeClient(socket_path=str(socket_path)) as client:
            assert client.server_info["protocol"] == protocol.PROTOCOL_VERSION
            assert client.ping()["type"] == "pong"
            first = client.submit(spec=spec_dict, on_event=events.append)
            assert first.executed == 1
            again = client.submit(spec=spec_dict)
            assert again.cached == 1
            assert strip_volatile(first.records[0]) == strip_volatile(
                again.records[0]
            )
            stats = client.stats()
            assert stats["cache_hits"] == 1 and stats["executed"] == 1
        assert [e["event"] for e in events] == [
            "job_queued", "job_start", "job_end",
        ]
    finally:
        handles["loop"].call_soon_threadsafe(handles["stop"].set)
        thread.join(30)
    assert not thread.is_alive()


def test_client_transport_error_when_no_daemon(tmp_path):
    with pytest.raises(ServeClientError) as err:
        ServeClient(socket_path=str(tmp_path / "nothing.sock")).connect()
    assert err.value.code == "transport"


def test_out_of_band_store_append_visible_after_refresh(tmp_path):
    """Regression for the stale-hot-map footgun: a row appended to the
    store by another process (e.g. ``repro sweep`` from the CLI) was
    invisible to a running daemon forever. ``refresh_store()`` — and
    the ``serve --store-refresh`` loop that calls it — absorbs it into
    the hot map, so the next submit is a cache hit, not a re-run."""
    spec = _spec("serve-stale")
    path = tmp_path / "store.jsonl"

    async def body():
        service = SolverService(store=ResultStore(path), max_workers=1)
        await service.start()
        try:
            # Another process completes the same jobs out-of-band.
            ResultStore(path, index=False).append(
                [execute_job(job.to_dict()) for job in expand_jobs(spec)]
            )
            absorbed = service.refresh_store()
            outcome = await service.submit(spec)
            # Idempotent: nothing new to absorb the second time.
            return absorbed, service.refresh_store(), outcome
        finally:
            await service.close(drain=False)

    absorbed, again, outcome = run(body())
    assert absorbed == len(expand_jobs(spec))
    assert again == 0
    assert outcome.cached == len(expand_jobs(spec))
    assert outcome.executed == 0


def test_store_refresh_loop_absorbs_while_serving(tmp_path):
    """The ``serve --store-refresh SECONDS`` wiring end-to-end: with a
    live server and a fast refresh interval, an out-of-band append
    becomes a cache hit with no explicit refresh call."""
    spec_dict = single_job_spec("serve-loop-stale")
    spec = ScenarioSpec.from_dict(spec_dict)
    path = tmp_path / "store.jsonl"

    async def body():
        service = SolverService(store=ResultStore(path), max_workers=1)
        await service.start()
        server = ServeServer(service, store_refresh=0.05)
        await server.start_unix(str(tmp_path / "d.sock"))
        stop = asyncio.Event()
        task = asyncio.create_task(server.serve_until(stop))
        try:
            await asyncio.sleep(0)  # let the refresh loop spin up
            ResultStore(path, index=False).append(
                [execute_job(job.to_dict()) for job in expand_jobs(spec)]
            )
            for _ in range(100):  # ~5s budget for a 50ms interval
                if spec_jobs_cached(service, spec):
                    break
                await asyncio.sleep(0.05)
            outcome = await service.submit(spec)
            return outcome
        finally:
            stop.set()
            await task
            await service.close(drain=False)

    def spec_jobs_cached(service, spec):
        return all(job.key in service._hot for job in expand_jobs(spec))

    outcome = run(body())
    assert outcome.cached == len(expand_jobs(spec))
    assert outcome.executed == 0
