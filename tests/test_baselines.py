"""Tests for the baseline algorithms (Khan [14], spanner [17], MST)."""

import math
import random

import networkx as nx
import pytest

from repro.baselines import (
    exact_mst_edges,
    exact_mst_weight,
    khan_steiner_forest,
    spanner_steiner_forest,
)
from repro.baselines.mst import mst_instance
from repro.baselines.spanner import greedy_spanner
from repro.core import distributed_moat_growing
from repro.exact import steiner_forest_cost
from repro.model import SteinerForestInstance
from tests.conftest import make_random_instance


class TestKhan:
    @pytest.mark.parametrize("seed", range(5))
    def test_feasible(self, seed):
        inst = make_random_instance(seed)
        result = khan_steiner_forest(inst, rng=random.Random(seed))
        result.solution.assert_feasible(inst)

    @pytest.mark.parametrize("seed", range(5))
    def test_logn_ratio_shape(self, seed):
        inst = make_random_instance(seed)
        opt = steiner_forest_cost(inst)
        result = khan_steiner_forest(inst, rng=random.Random(seed))
        if opt > 0:
            n = inst.graph.num_nodes
            assert result.solution.weight <= 8 * math.log2(n) * opt

    def test_rounds_positive(self):
        inst = make_random_instance(0)
        result = khan_steiner_forest(inst)
        assert result.rounds > 0


class TestSpanner:
    def test_greedy_spanner_stretch(self):
        rng = random.Random(3)
        points = list(range(8))
        metric = {
            u: {v: 0 for v in points} for u in points
        }
        for i, u in enumerate(points):
            for v in points[i + 1:]:
                d = rng.randint(1, 50)
                metric[u][v] = d
                metric[v][u] = d
        # Fix triangle inequality by shortest-pathing the random metric.
        for m in points:
            for u in points:
                for v in points:
                    if metric[u][m] + metric[m][v] < metric[u][v]:
                        metric[u][v] = metric[u][m] + metric[m][v]
        stretch = 3
        edges = greedy_spanner(points, metric, stretch)
        # Verify stretch via Dijkstra on the spanner.
        adjacency = {p: [] for p in points}
        for u, v in edges:
            adjacency[u].append((v, metric[u][v]))
            adjacency[v].append((u, metric[u][v]))

        import heapq

        def sp_dist(a, b):
            dist = {a: 0}
            heap = [(0, a)]
            while heap:
                d, x = heapq.heappop(heap)
                if x == b:
                    return d
                if d > dist.get(x, d):
                    continue
                for y, w in adjacency[x]:
                    if d + w < dist.get(y, math.inf):
                        dist[y] = d + w
                        heapq.heappush(heap, (dist[y], y))
            return math.inf

        for i, u in enumerate(points):
            for v in points[i + 1:]:
                assert sp_dist(u, v) <= stretch * metric[u][v]

    @pytest.mark.parametrize("seed", range(5))
    def test_feasible(self, seed):
        inst = make_random_instance(seed)
        result = spanner_steiner_forest(inst)
        result.solution.assert_feasible(inst)

    @pytest.mark.parametrize("seed", range(5))
    def test_ratio_at_most_2_stretch(self, seed):
        """2-approx on the spanner × spanner stretch."""
        inst = make_random_instance(seed)
        opt = steiner_forest_cost(inst)
        result = spanner_steiner_forest(inst)
        if opt > 0:
            assert result.solution.weight <= 2 * result.stretch * opt

    def test_trivial_instance(self, grid33):
        inst = SteinerForestInstance(grid33, {0: "x"})
        result = spanner_steiner_forest(inst)
        assert result.solution.edges == frozenset()


class TestMST:
    def test_kruskal_matches_networkx(self, rng):
        g = nx.gnp_random_graph(12, 0.5, seed=8)
        if not nx.is_connected(g):
            g = nx.compose(g, nx.path_graph(12))
        for u, v in g.edges:
            g[u][v]["weight"] = rng.randint(1, 30)
        from repro.model import WeightedGraph

        wg = WeightedGraph.from_networkx(g)
        expected = sum(
            d["weight"]
            for _, _, d in nx.minimum_spanning_tree(g).edges(data=True)
        )
        assert exact_mst_weight(wg) == expected
        assert len(exact_mst_edges(wg)) == wg.num_nodes - 1

    def test_mst_instance_spans_all(self, grid33):
        inst = mst_instance(grid33)
        assert inst.num_terminals == grid33.num_nodes
        assert inst.num_components == 1

    def test_deterministic_algorithm_solves_mst_exactly(self, grid33):
        """Section 1: the moat algorithm specializes to exact MST."""
        inst = mst_instance(grid33)
        result = distributed_moat_growing(inst)
        assert result.solution.weight == exact_mst_weight(grid33)
