"""Tests for the exact solvers (Dreyfus–Wagner and partition DP)."""

import random

import networkx as nx
import pytest

from repro.exact import (
    brute_force_forest_cost,
    steiner_forest_cost,
    steiner_tree_cost,
    steiner_tree_edges,
)
from repro.exact.steiner_forest import _set_partitions, optimal_forest_edges
from repro.model import ForestSolution, SteinerForestInstance, WeightedGraph
from repro.model.instance import instance_from_components
from tests.conftest import make_random_instance


class TestSetPartitions:
    def test_bell_numbers(self):
        for n, bell in [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15)]:
            assert len(list(_set_partitions(list(range(n))))) == bell

    def test_partitions_cover(self):
        for partition in _set_partitions([1, 2, 3]):
            flattened = sorted(x for block in partition for x in block)
            assert flattened == [1, 2, 3]


class TestSteinerTree:
    def test_two_terminals_is_shortest_path(self, triangle):
        assert steiner_tree_cost(triangle, [0, 2]) == triangle.distance(0, 2)

    def test_single_terminal_zero(self, triangle):
        assert steiner_tree_cost(triangle, [0]) == 0

    def test_all_nodes_is_mst(self, grid33):
        import networkx as nx

        mst = nx.minimum_spanning_tree(grid33.to_networkx())
        expected = sum(d["weight"] for _, _, d in mst.edges(data=True))
        assert steiner_tree_cost(grid33, grid33.nodes) == expected

    def test_steiner_node_used(self):
        """Classic: star where the optimum routes through a non-terminal."""
        g = WeightedGraph(
            range(4),
            [(3, 0, 1), (3, 1, 1), (3, 2, 1), (0, 1, 2), (1, 2, 2), (0, 2, 2)],
        )
        assert steiner_tree_cost(g, [0, 1, 2]) == 3  # via center 3

    def test_edges_reconstruction_matches_cost(self, grid33):
        terminals = [0, 2, 6, 8]
        cost = steiner_tree_cost(grid33, terminals)
        edges = steiner_tree_edges(grid33, terminals)
        assert grid33.edge_weight_sum(edges) == cost
        sol = ForestSolution(grid33, edges)
        inst = SteinerForestInstance(
            grid33, {v: "x" for v in terminals}
        )
        assert sol.is_feasible(inst)

    def test_matches_networkx_approx_lower(self, rng):
        """networkx's 2-approx is never better than our exact optimum."""
        from networkx.algorithms.approximation import steiner_tree

        g = nx.gnp_random_graph(10, 0.5, seed=3)
        if not nx.is_connected(g):
            g = nx.compose(g, nx.path_graph(10))
        for u, v in g.edges:
            g[u][v]["weight"] = rng.randint(1, 9)
        wg = WeightedGraph.from_networkx(g)
        terminals = [0, 3, 7, 9]
        approx = steiner_tree(g, terminals, weight="weight")
        approx_cost = sum(d["weight"] for _, _, d in approx.edges(data=True))
        assert steiner_tree_cost(wg, terminals) <= approx_cost


class TestSteinerForest:
    def test_matches_brute_force(self):
        for seed in range(6):
            rng = random.Random(seed)
            g = nx.gnp_random_graph(7, 0.5, seed=seed)
            if not nx.is_connected(g):
                g = nx.compose(g, nx.path_graph(7))
            g = nx.Graph(g)
            if g.number_of_edges() > 15:
                g.remove_edges_from(
                    list(g.edges)[15:]
                )
                if not nx.is_connected(g):
                    g = nx.compose(g, nx.path_graph(7))
            for u, v in g.edges:
                g[u][v]["weight"] = rng.randint(1, 9)
            wg = WeightedGraph.from_networkx(g)
            inst = instance_from_components(wg, [[0, 3], [1, 5]])
            assert steiner_forest_cost(inst) == brute_force_forest_cost(inst)

    def test_merging_components_can_help(self):
        """Two demand pairs sharing an expensive bridge: the optimal forest
        joins them into one tree."""
        # a1-a2 cheap, b1-b2 cheap, but both pairs split across a bridge.
        g = WeightedGraph(
            ["a1", "b1", "m1", "m2", "a2", "b2"],
            [
                ("a1", "m1", 1),
                ("b1", "m1", 1),
                ("m1", "m2", 5),
                ("m2", "a2", 1),
                ("m2", "b2", 1),
            ],
        )
        inst = SteinerForestInstance(
            g, {"a1": "a", "a2": "a", "b1": "b", "b2": "b"}
        )
        # Separate trees would pay the bridge twice (impossible here: the
        # bridge is shared, so OPT = 9 via one merged tree).
        assert steiner_forest_cost(inst) == 9

    def test_empty_instance(self, grid33):
        inst = SteinerForestInstance(grid33, {})
        assert steiner_forest_cost(inst) == 0

    def test_singletons_ignored(self, grid33):
        inst = SteinerForestInstance(grid33, {0: "a", 8: "b"})
        assert steiner_forest_cost(inst) == 0

    def test_optimal_edges_feasible_and_match_cost(self):
        inst = make_random_instance(42, n_range=(8, 10), k_range=(2, 2))
        edges = optimal_forest_edges(inst)
        cost = steiner_forest_cost(inst)
        sol = ForestSolution(inst.graph, edges)
        assert sol.is_feasible(inst)
        assert sol.weight == cost

    def test_brute_force_caps_edges(self, grid44):
        inst = SteinerForestInstance(grid44, {0: "a", 15: "a"})
        with pytest.raises(ValueError):
            brute_force_forest_cost(inst, max_edges=5)
