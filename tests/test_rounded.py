"""Tests for Algorithm 2 — rounded moat radii (Theorem 4.2)."""

import math
from fractions import Fraction

import pytest

from repro.core.rounded import num_growth_phases, rounded_moat_growing
from repro.exact import steiner_forest_cost
from repro.model import SteinerForestInstance
from tests.conftest import make_random_instance


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("eps", [Fraction(1, 10), Fraction(1, 2), 1])
    def test_two_plus_eps_approximation(self, seed, eps):
        inst = make_random_instance(seed)
        opt = steiner_forest_cost(inst)
        result = rounded_moat_growing(inst, eps)
        result.solution.assert_feasible(inst)
        if opt > 0:
            assert result.solution.weight <= (2 + eps) * opt

    @pytest.mark.parametrize("seed", range(10))
    def test_growth_phase_count_logarithmic(self, seed):
        """Lemma F.1: O(log_{1+ε/2} WD) growth phases."""
        inst = make_random_instance(seed)
        eps = Fraction(1, 2)
        result = rounded_moat_growing(inst, eps)
        wd = inst.graph.weighted_diameter()
        bound = 2 + math.log(max(2, wd)) / math.log(1 + float(eps) / 2)
        assert num_growth_phases(result) <= bound

    def test_smaller_eps_gives_more_phases(self):
        inst = make_random_instance(3, n_range=(12, 12))
        fine = num_growth_phases(rounded_moat_growing(inst, Fraction(1, 10)))
        coarse = num_growth_phases(rounded_moat_growing(inst, 2))
        assert fine >= coarse

    @pytest.mark.parametrize("seed", range(6))
    def test_corollary_d1_dual_bound(self, seed):
        """Corollary D.1: (1 + ε/2)·OPT ≥ Σ actᵢ µᵢ."""
        inst = make_random_instance(seed)
        opt = steiner_forest_cost(inst)
        eps = Fraction(1, 2)
        result = rounded_moat_growing(inst, eps)
        assert result.dual_lower_bound <= (1 + eps / 2) * opt

    def test_rejects_nonpositive_eps(self, grid33):
        inst = SteinerForestInstance(grid33, {0: "x", 8: "x"})
        with pytest.raises(ValueError):
            rounded_moat_growing(inst, 0)

    def test_checkpoints_have_no_path(self):
        inst = make_random_instance(1)
        result = rounded_moat_growing(inst, Fraction(1, 2))
        for event in result.events:
            if event.v is None:
                assert event.path == []
                assert event.added_edges == frozenset()

    def test_trivial_instance(self, grid33):
        inst = SteinerForestInstance(grid33, {0: "x"})
        result = rounded_moat_growing(inst)
        assert result.solution.edges == frozenset()

    @pytest.mark.parametrize("seed", range(6))
    def test_float_eps_accepted(self, seed):
        inst = make_random_instance(seed)
        result = rounded_moat_growing(inst, 0.5)
        result.solution.assert_feasible(inst)
