"""Tests for the CONGEST ledger: rounds, congestion, cut metering."""

import pytest

from repro.congest import CongestRun
from repro.exceptions import CongestViolationError, SimulationError


class TestLedger:
    def test_tick_advances_round(self, path5):
        run = CongestRun(path5)
        run.tick()
        assert run.rounds == 1

    def test_tick_counts_messages(self, path5):
        run = CongestRun(path5)
        run.tick({(0, 1): 1, (1, 2): 1})
        assert run.messages == 2
        assert run.bits == 2 * run.bandwidth_bits

    def test_tick_rejects_two_messages_per_edge(self, path5):
        run = CongestRun(path5)
        with pytest.raises(CongestViolationError):
            run.tick({(0, 1): 2})

    def test_tick_rejects_non_edges(self, path5):
        run = CongestRun(path5)
        with pytest.raises(CongestViolationError):
            run.tick({(0, 4): 1})

    def test_opposite_directions_both_allowed(self, path5):
        run = CongestRun(path5)
        run.tick({(0, 1): 1, (1, 0): 1})
        assert run.messages == 2

    def test_charge_rounds(self, path5):
        run = CongestRun(path5)
        run.charge_rounds(10, "test")
        assert run.rounds == 10

    def test_charge_negative_rejected(self, path5):
        run = CongestRun(path5)
        with pytest.raises(ValueError):
            run.charge_rounds(-1)

    def test_max_rounds_guard(self, path5):
        run = CongestRun(path5, max_rounds=3)
        with pytest.raises(SimulationError):
            for _ in range(5):
                run.tick()

    def test_bandwidth_default_is_logarithmic(self, path5):
        run = CongestRun(path5)
        assert run.bandwidth_bits == 4 * 3  # ceil(log2 5) = 3

    def test_phase_attribution(self, path5):
        run = CongestRun(path5)
        run.set_phase("alpha")
        run.tick()
        run.charge_rounds(2)
        run.set_phase("beta")
        run.tick()
        assert run.phase_rounds == {"alpha": 3, "beta": 1}

    def test_cut_metering(self, path5):
        run = CongestRun(path5)
        run.tick({(1, 2): 1, (3, 4): 1})
        run.tick({(2, 1): 1})
        assert run.cut_messages([(1, 2)]) == 2
        assert run.cut_bits([(1, 2)]) == 2 * run.bandwidth_bits
        assert run.cut_messages([(0, 1)]) == 0
