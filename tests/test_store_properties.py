"""Property tests for the result store, its migration chain, and the
sidecar index.

Three laws, checked over hypothesis-generated row populations:

* **migration is idempotent** — ``migrate(migrate(row)) == migrate(row)``
  for arbitrary partial rows from any schema era;
* **the store round-trips** — append → reopen → ``select``/``records``
  returns exactly what went in (modulo normalization, which is itself
  idempotent, so a second round-trip is byte-stable);
* **index and scan agree** — every read the index answers
  (``lookup``, ``keys``, key-only ``select``, ``__len__``) matches the
  pure-scan answer on the same file, including first-occurrence
  semantics under duplicate keys.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.engine.index import StoreIndex, scan_rows
from repro.engine.jobs import canonical_json
from repro.engine.migration import CHAIN, SCHEMA_VERSION
from repro.engine.store import ResultStore

_ident = st.text(
    st.characters(codec="ascii", categories=("Lu", "Ll", "Nd")),
    min_size=1,
    max_size=12,
)

#: Optional axes a historical row may or may not carry, depending on
#: which schema era wrote it. Drawing each independently produces rows
#: no single era ever wrote — migration must normalize those too.
_optional_axes = {
    "network": st.fixed_dictionaries(
        {"model": st.sampled_from(["reliable", "lossy"]), "params": st.just({})}
    ),
    "network_model": st.sampled_from(["reliable", "lossy"]),
    "backend": st.fixed_dictionaries(
        {"name": st.sampled_from(["reference", "flatarray"]), "params": st.just({})}
    ),
    "backend_name": st.sampled_from(["reference", "flatarray"]),
    "placement": st.sampled_from(["uniform", "clustered"]),
    "schema": st.integers(min_value=1, max_value=SCHEMA_VERSION),
}


@st.composite
def partial_rows(draw):
    row = {
        "key": draw(st.text("0123456789abcdef", min_size=8, max_size=16)),
        "scenario": draw(_ident),
        "metrics": {"weight": draw(st.integers(0, 10_000))},
    }
    for axis, strategy in _optional_axes.items():
        if draw(st.booleans()):
            row[axis] = draw(strategy)
    return row


@st.composite
def row_batches(draw):
    """1–12 rows whose keys deliberately collide sometimes, so the
    duplicate-key (first-occurrence-wins) path gets exercised."""
    keys = draw(
        st.lists(
            st.sampled_from([f"{i:064x}" for i in range(6)]),
            min_size=1,
            max_size=12,
        )
    )
    return [
        {
            "key": key,
            "scenario": f"prop-{position}",
            "schema": SCHEMA_VERSION,
            "metrics": {"weight": position},
        }
        for position, key in enumerate(keys)
    ]


class TestMigrationLaws:
    @given(partial_rows())
    @settings(max_examples=60, deadline=None)
    def test_migrate_is_idempotent(self, row):
        once = CHAIN.migrate(json.loads(json.dumps(row)))
        twice = CHAIN.migrate(json.loads(json.dumps(once)))
        assert canonical_json(once) == canonical_json(twice)

    @given(partial_rows())
    @settings(max_examples=60, deadline=None)
    def test_migrate_fills_version_gated_axes_and_keeps_given_values(self, row):
        """Steps at or after the row's version run; earlier ones are
        trusted (a v3 row already promised its network axes)."""
        version = CHAIN.row_version(row)
        filled_from = {"network": 1, "network_model": 1,
                       "backend": 2, "backend_name": 2, "placement": 3}
        migrated = CHAIN.migrate(json.loads(json.dumps(row)))
        for axis, step_from in filled_from.items():
            if version <= step_from:
                assert axis in migrated
            if axis in row:  # present values are never overwritten
                assert migrated[axis] == row[axis]
        # The stored version stamp is read, never rewritten in memory.
        assert migrated.get("schema") == row.get("schema")


class TestStoreRoundTrip:
    @given(st.lists(partial_rows(), min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_append_reopen_select_round_trips(self, tmp_path_factory, rows):
        path = tmp_path_factory.mktemp("prop") / "store.jsonl"
        ResultStore(path, index=False).append(rows)
        reread = list(ResultStore(path, index=False).records())
        assert len(reread) == len(rows)
        for original, stored in zip(rows, reread):
            expected = CHAIN.migrate(json.loads(json.dumps(original)))
            expected.setdefault("schema", SCHEMA_VERSION)
            assert canonical_json(stored) == canonical_json(expected)
        # Normalization is idempotent, so a second hop is byte-stable.
        rehop = tmp_path_factory.mktemp("prop") / "rehop.jsonl"
        ResultStore(rehop, index=False).append(reread)
        rehopped = list(ResultStore(rehop, index=False).records())
        assert [canonical_json(r) for r in rehopped] \
            == [canonical_json(r) for r in reread]


class TestIndexScanEquivalence:
    @given(row_batches())
    @settings(max_examples=25, deadline=None)
    def test_indexed_reads_equal_scan_reads(self, tmp_path_factory, rows):
        path = tmp_path_factory.mktemp("prop") / "store.jsonl"
        ResultStore(path, index=False).append(rows)

        indexed = ResultStore(path, index=True)
        scanning = ResultStore(path, index=False)

        assert indexed.keys() == scanning.keys()
        assert len(indexed) == len(scanning)

        every_key = {row["key"] for row in rows} | {"0" * 64 + "ff"}
        for key in sorted(every_key):
            via_index = indexed.lookup(key)
            via_scan = scanning.lookup(key)
            if via_scan is None:
                assert via_index is None
            else:
                assert canonical_json(via_index) == canonical_json(via_scan)

        picked = indexed.select(keys=every_key)
        expected = scanning.select(keys=every_key)
        assert [canonical_json(r) for r in picked] \
            == [canonical_json(r) for r in expected]
        # First-occurrence-wins: one record per distinct present key,
        # and each carries the earliest writer's payload.
        assert len(picked) == len({row["key"] for row in rows})
        first_weight = {}
        for row in rows:
            first_weight.setdefault(row["key"], row["metrics"]["weight"])
        for record in picked:
            assert record["metrics"]["weight"] == first_weight[record["key"]]

    @given(row_batches(), row_batches())
    @settings(max_examples=15, deadline=None)
    def test_out_of_band_growth_is_absorbed(self, tmp_path_factory, first, second):
        """An index synced before an out-of-band append still answers
        correctly after: the size probe detects growth and absorbs the
        new tail incrementally."""
        path = tmp_path_factory.mktemp("prop") / "store.jsonl"
        ResultStore(path, index=False).append(first)
        indexed = ResultStore(path, index=True)
        indexed.keys()  # materialize the sidecar on the first region

        ResultStore(path, index=False).append(second)  # out-of-band writer

        expected_keys = {row["key"] for row in first + second}
        assert set(indexed.keys()) == expected_keys
        assert StoreIndex(path).status()["rows"] == len(first) + len(second)
        assert sum(1 for _ in scan_rows(path)) == len(first) + len(second)
