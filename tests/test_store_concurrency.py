"""Concurrent-writer safety of :class:`ResultStore` JSONL appends.

Two real writer processes hammer one store file through the locked
append path (``flock`` + single ``O_APPEND`` write in
:meth:`ResultStore.append`). Torn or interleaved writes would surface
as unparseable lines or a wrong row count — exactly what the daemon's
multi-process smoke relies on never happening.
"""

import json
import multiprocessing

from repro.engine.store import ResultStore

WRITERS = 2
BATCHES = 60
ROWS_PER_BATCH = 5


def _writer(path, tag, barrier):
    store = ResultStore(path)
    barrier.wait()  # maximize overlap between the two writers
    for batch in range(BATCHES):
        store.append([
            {
                "key": f"{tag}-{batch}-{row}",
                "scenario": "concurrency",
                # Fat enough that an unlocked write would straddle a
                # pipe/page boundary and tear visibly.
                "padding": "x" * 512,
                "metrics": {"wall_time": 0.0},
            }
            for row in range(ROWS_PER_BATCH)
        ])


def test_two_writer_processes_never_tear_rows(tmp_path):
    path = tmp_path / "store.jsonl"
    barrier = multiprocessing.Barrier(WRITERS)
    processes = [
        multiprocessing.Process(target=_writer, args=(str(path), f"w{i}", barrier))
        for i in range(WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(120)
        assert process.exitcode == 0
    lines = path.read_text(encoding="utf-8").splitlines()
    expected = WRITERS * BATCHES * ROWS_PER_BATCH
    assert len(lines) == expected
    keys = [json.loads(line)["key"] for line in lines]  # every line parses
    assert len(set(keys)) == expected
    # A batch's rows land contiguously: the lock covers the whole append.
    for start in range(0, expected, ROWS_PER_BATCH):
        batch = keys[start:start + ROWS_PER_BATCH]
        prefix = batch[0].rsplit("-", 1)[0]
        assert all(key.rsplit("-", 1)[0] == prefix for key in batch)
    # And the store reads its own concurrent output back cleanly.
    assert len(ResultStore(path)) == expected
