"""Concurrent-writer safety of :class:`ResultStore` JSONL appends —
and of the sidecar index reading underneath them.

Two real writer processes hammer one store file through the locked
append path (``flock`` + single ``O_APPEND`` write in
:meth:`ResultStore.append`). Torn or interleaved writes would surface
as unparseable lines or a wrong row count — exactly what the daemon's
multi-process smoke relies on never happening.

The index half: a reader syncing :class:`StoreIndex` mid-hammer must
always observe a **consistent prefix** (every indexed key's seek-read
parses to a whole row), and an index left stale by out-of-band appends
or a file rewrite must detect and heal itself on the next access.
"""

import json
import multiprocessing

from repro.engine.index import StoreIndex, scan_rows
from repro.engine.store import ResultStore

WRITERS = 2
BATCHES = 60
ROWS_PER_BATCH = 5


def _writer(path, tag, barrier):
    store = ResultStore(path)
    barrier.wait()  # maximize overlap between the two writers
    for batch in range(BATCHES):
        store.append([
            {
                "key": f"{tag}-{batch}-{row}",
                "scenario": "concurrency",
                # Fat enough that an unlocked write would straddle a
                # pipe/page boundary and tear visibly.
                "padding": "x" * 512,
                "metrics": {"wall_time": 0.0},
            }
            for row in range(ROWS_PER_BATCH)
        ])


def test_two_writer_processes_never_tear_rows(tmp_path):
    path = tmp_path / "store.jsonl"
    barrier = multiprocessing.Barrier(WRITERS)
    processes = [
        multiprocessing.Process(target=_writer, args=(str(path), f"w{i}", barrier))
        for i in range(WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(120)
        assert process.exitcode == 0
    lines = path.read_text(encoding="utf-8").splitlines()
    expected = WRITERS * BATCHES * ROWS_PER_BATCH
    assert len(lines) == expected
    keys = [json.loads(line)["key"] for line in lines]  # every line parses
    assert len(set(keys)) == expected
    # A batch's rows land contiguously: the lock covers the whole append.
    for start in range(0, expected, ROWS_PER_BATCH):
        batch = keys[start:start + ROWS_PER_BATCH]
        prefix = batch[0].rsplit("-", 1)[0]
        assert all(key.rsplit("-", 1)[0] == prefix for key in batch)
    # And the store reads its own concurrent output back cleanly.
    assert len(ResultStore(path)) == expected


def _indexing_reader(path, stop, failures):
    """Repeatedly sync the sidecar against the growing file and verify
    every answer is a consistent prefix: row counts never regress and a
    sampled indexed key seek-reads to a whole, parseable row."""
    index = StoreIndex(path)
    last_rows = 0
    try:
        while not stop.is_set():
            index.sync()
            status = index.status()
            if status["rows"] < last_rows:
                failures.put(f"rows regressed {last_rows} -> {status['rows']}")
                return
            last_rows = status["rows"]
            for key in list(index.keys())[:5]:
                span = index.lookup(key)
                if span is None:
                    failures.put(f"indexed key {key!r} vanished")
                    return
                offset, length = span
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    blob = handle.read(length)
                row = json.loads(blob)  # whole row, never a torn span
                if row["key"] != key:
                    failures.put(f"seek-read for {key!r} hit {row['key']!r}")
                    return
    except Exception as error:  # noqa: BLE001 - reported to the parent
        failures.put(f"{type(error).__name__}: {error}")


def test_index_reader_sees_consistent_prefix_under_two_writers(tmp_path):
    path = tmp_path / "store.jsonl"
    path.touch()
    barrier = multiprocessing.Barrier(WRITERS)
    stop = multiprocessing.Event()
    failures = multiprocessing.Queue()
    writers = [
        multiprocessing.Process(target=_writer, args=(str(path), f"w{i}", barrier))
        for i in range(WRITERS)
    ]
    reader = multiprocessing.Process(
        target=_indexing_reader, args=(str(path), stop, failures)
    )
    reader.start()
    for process in writers:
        process.start()
    for process in writers:
        process.join(120)
        assert process.exitcode == 0
    stop.set()
    reader.join(120)
    assert reader.exitcode == 0
    assert failures.empty(), failures.get()
    # After the dust settles one sync absorbs everything the writers
    # appended; the reader's incremental syncs and this full one agree.
    expected = WRITERS * BATCHES * ROWS_PER_BATCH
    index = StoreIndex(path)
    index.sync()
    assert index.status()["rows"] == expected
    assert index.row_count() == expected


def test_out_of_band_append_is_detected_and_absorbed(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ResultStore(path)
    store.append([{"key": f"seed-{i}", "scenario": "stale"} for i in range(4)])
    assert len(store.keys()) == 4  # sidecar materialized

    # Another process appends without telling our index.
    other = ResultStore(path, index=False)
    other.append([{"key": f"late-{i}", "scenario": "stale"} for i in range(3)])

    # The cheap size probe notices the growth on the next access.
    assert len(store.keys()) == 7
    assert store.lookup("late-2") is not None
    # refresh() is the explicit, fingerprint-verified variant.
    store.refresh()
    assert len(store) == 7


def test_rewritten_file_triggers_full_rebuild(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ResultStore(path)
    store.append([{"key": f"old-{i}", "scenario": "rewrite"} for i in range(6)])
    store.keys()
    assert StoreIndex(path).status()["state"] == "fresh"

    # Out-of-band rewrite padded to the exact original byte count:
    # the cheap size probe can't see it, the content fingerprint can.
    original_size = path.stat().st_size
    bare = [
        {"key": f"new-{i}", "scenario": "rewrite", "schema": 5}
        for i in range(6)
    ]
    body = "".join(json.dumps(row, sort_keys=True) + "\n" for row in bare)
    pad = original_size - len(body.encode("utf-8"))
    overhead = len(json.dumps({"key": "pad", "pad": ""})) + 1  # + newline
    assert pad > overhead, "store rows shrank; re-shape this test"
    body += json.dumps({"key": "pad", "pad": "x" * (pad - overhead)}) + "\n"
    path.write_text(body, encoding="utf-8")
    assert path.stat().st_size == original_size

    store.refresh()
    assert set(store.keys()) == {f"new-{i}" for i in range(6)} | {"pad"}
    assert store.lookup("old-0") is None
    assert StoreIndex(path).status()["rows"] == 7


def test_torn_tail_is_invisible_until_completed(tmp_path):
    """A half-written final line (writer died mid-append) is never
    indexed or yielded; finishing the line makes it appear."""
    path = tmp_path / "store.jsonl"
    store = ResultStore(path)
    store.append([{"key": "whole", "scenario": "torn"}])
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"key": "torn-row", "scenario": "to')  # no newline

    store.refresh()
    assert set(store.keys()) == {"whole"}
    assert [row["key"] for _, _, row in scan_rows(path)] == ["whole"]

    with path.open("a", encoding="utf-8") as handle:
        handle.write('rn"}\n')
    store.refresh()
    assert set(store.keys()) == {"whole", "torn-row"}
    assert store.lookup("torn-row")["scenario"] == "torn"
