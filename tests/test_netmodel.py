"""Tests for the network-model subsystem (repro.netmodel)."""

import json

import pytest

from repro.congest.simulator import (
    EchoBroadcast,
    FloodMaxLeaderElection,
    NodeProgram,
    Simulator,
)
from repro.exceptions import CongestViolationError
from repro.netmodel import (
    NETWORK_MODELS,
    BandwidthCap,
    BoundedDelayAsync,
    CrashStop,
    LossyChannel,
    NetworkModel,
    ReliableSynchronous,
    TraceRecorder,
    build_network_model,
    is_default_network,
    node_sort_key,
    normalize_network,
    payload_bits,
)


def flood_run(graph, network=None, net_seed=0, trace=None, max_rounds=10_000):
    programs = {v: FloodMaxLeaderElection() for v in graph.nodes}
    sim = Simulator(
        graph, programs, network=network, trace=trace, net_seed=net_seed
    )
    rounds = sim.run_to_completion(max_rounds=max_rounds)
    return sim, programs, rounds


class TestNodeSortKey:
    def test_integers_sort_numerically(self):
        assert sorted([10, 9, 2], key=node_sort_key) == [2, 9, 10]

    def test_mixed_types_never_cross_compare(self):
        values = [10, "9", 2, "a", (lambda: None)]
        ordered = sorted(values, key=node_sort_key)
        # Numbers precede strings precede other objects.
        assert ordered[:2] == [2, 10]
        assert ordered[2:4] == ["9", "a"]

    def test_repr_pitfall_is_gone(self):
        assert node_sort_key(9) < node_sort_key(10)
        assert repr(9) > repr(10)  # the bug this key replaces


class TestSpecNormalization:
    def test_none_and_name_and_dict(self):
        assert normalize_network(None) == {"model": "reliable", "params": {}}
        assert normalize_network("lossy") == {"model": "lossy", "params": {}}
        spec = normalize_network({"model": "delay", "params": {"max_delay": 2}})
        assert spec == {"model": "delay", "params": {"max_delay": 2}}

    def test_model_instance_round_trips(self):
        model = LossyChannel(drop_p=0.25, retransmit=1)
        spec = normalize_network(model)
        clone = build_network_model(json.loads(json.dumps(spec)))
        assert isinstance(clone, LossyChannel)
        assert clone.drop_p == 0.25 and clone.retransmit == 1

    def test_default_detection(self):
        assert is_default_network(None)
        assert is_default_network("reliable")
        assert not is_default_network("lossy")

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="unexpected network spec keys"):
            normalize_network({"model": "lossy", "oops": 1})
        with pytest.raises(ValueError, match="unknown network model"):
            build_network_model("teleport")
        with pytest.raises(ValueError, match="bad parameters"):
            build_network_model({"model": "lossy", "params": {"nope": 1}})

    def test_registry_covers_all_builtins(self):
        assert set(NETWORK_MODELS) == {
            "reliable", "delay", "lossy", "crash", "bandwidth",
        }
        for name, cls in NETWORK_MODELS.items():
            assert issubclass(cls, NetworkModel)
            assert cls.name == name


class TestReliableSynchronous:
    def test_byte_identical_to_default(self, grid33, path5):
        # Pinned pre-netmodel round/message counts: the default channel
        # must not perturb existing executions.
        programs = {v: EchoBroadcast(0) for v in grid33.nodes}
        sim = Simulator(grid33, programs, network=ReliableSynchronous())
        assert sim.run_to_completion() == 8
        assert sim.run.messages == 24

        sim, programs, rounds = flood_run(path5, network="reliable")
        assert rounds == 5
        assert sim.run.messages == 24
        assert all(p.leader == 4 for p in programs.values())

    def test_no_overhead_in_emulation(self):
        assert ReliableSynchronous().emulated_rounds(17) == 17


class TestBoundedDelay:
    def test_max_delay_one_is_synchronous(self, path5):
        base = flood_run(path5)[2]
        assert flood_run(path5, network=BoundedDelayAsync(max_delay=1))[2] == base

    def test_delays_stretch_but_preserve_outcome(self, grid33):
        sim, programs, rounds = flood_run(
            grid33, network=BoundedDelayAsync(max_delay=4), net_seed=7
        )
        assert all(p.leader == max(grid33.nodes) for p in programs.values())
        assert rounds >= flood_run(grid33)[2]
        assert sim.network.stats["delayed"] > 0

    def test_seeded_determinism(self, grid33):
        runs = [
            flood_run(grid33, network=BoundedDelayAsync(3), net_seed=5)[2]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_emulation_overhead(self):
        assert BoundedDelayAsync(max_delay=3).emulated_rounds(10) == 30

    def test_rejects_bad_delay(self):
        with pytest.raises(ValueError):
            BoundedDelayAsync(max_delay=0)


class TestLossyChannel:
    def test_zero_loss_is_synchronous(self, path5):
        assert flood_run(path5, network=LossyChannel(drop_p=0.0))[2] == 5

    def test_drops_are_recorded(self, grid33):
        sim, _, _ = flood_run(
            grid33, network=LossyChannel(drop_p=0.6), net_seed=3
        )
        assert sim.network.stats["dropped"] > 0

    def test_retransmit_budget_recovers_messages(self, grid33):
        lossless_leader = max(grid33.nodes)
        sim, programs, _ = flood_run(
            grid33, network=LossyChannel(drop_p=0.5, retransmit=8), net_seed=3
        )
        # With a deep retry budget nearly every message eventually lands.
        assert sim.network.stats["retransmissions"] > 0
        assert any(p.leader == lossless_leader for p in programs.values())

    def test_emulation_overhead(self):
        # Expected attempts for p=0.5, one retry: 1 + 0.5 = 1.5.
        assert LossyChannel(0.5, retransmit=1).emulated_rounds(10) == 15
        assert LossyChannel(0.0).emulated_rounds(10) == 10

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LossyChannel(drop_p=1.0)
        with pytest.raises(ValueError):
            LossyChannel(retransmit=-1)


class TestCrashStop:
    def test_survivors_elect_among_themselves(self, path5):
        sim, programs, _ = flood_run(
            path5, network=CrashStop(victims=[4], at_round=1)
        )
        # Node 4 died before its first flush: survivors elect 3.
        assert [programs[v].leader for v in range(4)] == [3, 3, 3, 3]
        assert sim.network.stats["crashed"] == 1
        assert sim.network.stats["lost_sender_crashed"] > 0

    def test_late_crash_after_propagation(self, path5):
        _, programs, _ = flood_run(
            path5, network=CrashStop(victims=[4], at_round=10)
        )
        # The wave finished before the crash round: everyone knows 4.
        assert all(p.leader == 4 for p in programs.values())

    def test_messages_to_crashed_nodes_vanish(self, path5):
        sim, _, _ = flood_run(path5, network=CrashStop(victims=[2], at_round=2))
        assert sim.network.stats["lost_receiver_crashed"] > 0

    def test_crashed_nodes_count_as_terminated(self, triangle):
        class Mute(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(1, "x")

            def on_round(self, ctx, inbox):
                pass  # never halts, never replies

        sim = Simulator(
            triangle,
            {v: Mute() for v in triangle.nodes},
            network=CrashStop(victims=[0, 1, 2], at_round=2),
        )
        # All nodes crash in round 2; the run quiesces instead of hanging.
        assert sim.run_to_completion(max_rounds=10) <= 2


class TestBandwidthCap:
    def test_small_payloads_unaffected(self, path5):
        assert flood_run(path5, network=BandwidthCap(cap_bits=1024))[2] == 5

    def test_oversized_payload_fragments(self, triangle):
        received = []

        class Blob(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(1, "x" * 100)

            def on_round(self, ctx, inbox):
                received.extend(inbox)

        sim = Simulator(
            triangle,
            {v: Blob() for v in triangle.nodes},
            network=BandwidthCap(cap_bits=64),
        )
        # The payload is 102 JSON chars = 816 bits: ceil(816 / 64) = 13
        # fragment rounds, so the wave arrives in round 13, not round 1.
        rounds = sim.run_to_completion()
        assert rounds == 13
        assert received == [(0, "x" * 100)]
        assert sim.network.stats["fragmented"] == 1

    def test_strict_mode_rejects(self, triangle):
        class Blob(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(1, "x" * 100)

            def on_round(self, ctx, inbox):
                ctx.halt()

        sim = Simulator(
            triangle,
            {v: Blob() for v in triangle.nodes},
            network=BandwidthCap(cap_bits=64, strict=True),
        )
        with pytest.raises(CongestViolationError, match="caps messages"):
            sim.run_to_completion()

    def test_emulation_uses_ledger_bandwidth(self):
        model = BandwidthCap(cap_bits=8)
        assert model.emulated_rounds(10, bandwidth_bits=16) == 20
        assert model.emulated_rounds(10, bandwidth_bits=None) == 10

    def test_payload_bits(self):
        assert payload_bits("ab") == 8 * len('"ab"')
        assert payload_bits({1, 2}) == 8 * len(repr({1, 2}))


class TestTraceRecorder:
    def test_captures_sends_and_rounds(self, path5):
        trace = TraceRecorder()
        flood_run(path5, trace=trace)
        sends = list(trace.sends())
        rounds = list(trace.rounds())
        assert len(sends) == 24  # one event per ledger message
        assert len(rounds) == 5
        assert all(not e["dropped"] for e in sends)
        assert set(trace.volume_by_round()) == {1, 2, 3, 4, 5}

    def test_drop_events_recorded(self, grid33):
        trace = TraceRecorder()
        sim, _, _ = flood_run(
            grid33, network=LossyChannel(drop_p=0.6), net_seed=3, trace=trace
        )
        assert trace.total_dropped() == sim.network.stats["dropped"]

    def test_jsonl_round_trip(self, tmp_path, path5):
        trace = TraceRecorder()
        flood_run(path5, trace=trace)
        target = tmp_path / "trace.jsonl"
        assert trace.dump(target) == len(trace)
        loaded = TraceRecorder.load(target)
        assert loaded.events == trace.events

    def test_streaming_to_path(self, tmp_path, path5):
        target = tmp_path / "live.jsonl"
        trace = TraceRecorder(path=target)
        flood_run(path5, trace=trace)
        trace.close()
        assert TraceRecorder.load(target).events == trace.events
