"""Property-based metamorphic suite for the workload catalog.

Scale never outruns trust: every generator×placement combination the
engine can schedule is pinned here, so registering a new family or
placement automatically enrolls it (the matrix is built from the live
registries, not a hand-kept list). Three layers:

* **Structural invariants** — for every family×placement: seeded
  determinism (same seed ⇒ identical instance hash), connectivity,
  integer node labels 0..n-1, positive integer weights.
* **Metamorphic invariances** — every ``core`` solver's cost is
  invariant under order-preserving node relabeling (the relabeling
  preserves the library's documented repr-based tie-breaking; the paper
  assumes distinct weights, so arbitrary permutations may legally flip
  which of two equal-weight least-weight paths is chosen). Under
  uniform integer weight scaling, ``moat``/``distributed`` costs are
  exactly linear (scaling preserves every weight comparison), while
  ``rounded``/``sublinear`` — whose Appendix D growth phases checkpoint
  at absolute radii — must stay inside the (2+ε)² ratio band.
* **Differential correctness** — on tiny instances of each new family,
  every approximation algorithm's forest is feasible, costs at least
  the exact optimum, and stays within the paper's ratio bound.

Failures print the drawn seed (hypothesis reports the falsifying
example) — rebuild the instance with ``build_placed_instance`` to
reproduce.
"""

import hashlib
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    distributed_moat_growing,
    moat_growing,
    rounded_moat_growing,
    sublinear_moat_growing,
)
from repro.engine.registry import GRAPH_FAMILIES
from repro.exact import steiner_forest_cost
from repro.model.graph import WeightedGraph
from repro.model.instance import SteinerForestInstance
from repro.workloads import TERMINAL_PLACEMENTS, place_terminals

#: The live matrix: every registered family × every registered placement.
MATRIX = [
    (family, placement)
    for family in sorted(GRAPH_FAMILIES)
    for placement in sorted(TERMINAL_PLACEMENTS)
]

#: Deterministic core solvers under metamorphic test, with the paper's
#: approximation bound each one guarantees (used by the differential
#: layer; rounded/sublinear run at ε = 1/2, hence 2 + ε = 5/2).
CORE_SOLVERS = {
    "moat": (lambda inst: moat_growing(inst), Fraction(2)),
    "rounded": (
        lambda inst: rounded_moat_growing(inst, Fraction(1, 2)),
        Fraction(5, 2),
    ),
    "distributed": (lambda inst: distributed_moat_growing(inst), Fraction(2)),
    "sublinear": (
        lambda inst: sublinear_moat_growing(inst, Fraction(1, 2)),
        Fraction(5, 2),
    ),
}

#: Families added by the workload-suite PR (the differential layer
#: targets these; the seed families have their own exact-ratio tests).
NEW_FAMILIES = {
    "powerlaw": {"n": 10, "m_attach": 2},
    "smallworld": {"n": 10, "k_nearest": 4, "rewire_p": 0.3},
    "regular": {"n": 10, "degree": 3},
    "torus": {"rows": 3, "cols": 3},
    "caterpillar": {"spine": 4, "legs": 1},
    "broom": {"handle": 4, "bristles": 3},
    "cluster_geo": {"n": 10, "clusters": 2},
}


def build_placed_instance(family, placement, seed, **family_params):
    """One seeded instance: family defaults, k=2 components of size 2."""
    graph = GRAPH_FAMILIES[family].build(
        random.Random(seed), **family_params
    )
    return place_terminals(
        placement, graph, 2, 2, random.Random(seed ^ 0x5EED)
    )


def instance_hash(inst):
    """Content hash of an instance: nodes, weighted edges, labels."""
    payload = repr((
        inst.graph.nodes,
        inst.graph.edges(),
        sorted(inst.labels.items(), key=repr),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def scale_weights(inst, factor):
    """The same instance with every edge weight multiplied by ``factor``."""
    graph = inst.graph
    scaled = WeightedGraph(
        graph.nodes,
        [(u, v, w * factor) for u, v, w in graph.edges()],
    )
    return SteinerForestInstance(scaled, inst.labels)


def relabel_order_preserving(inst):
    """Relabel nodes to fresh identifiers with the same repr order.

    Node at repr-rank i maps to ``f"n{i:04d}"`` — zero-padded strings
    sort (by repr) in rank order, so every repr-based tie-break in the
    library sees the same ordering while all label *identities* change.
    """
    mapping = {old: f"n{i:04d}" for i, old in enumerate(inst.graph.nodes)}
    graph = inst.graph
    relabeled = WeightedGraph(
        [mapping[v] for v in graph.nodes],
        [(mapping[u], mapping[v], w) for u, v, w in graph.edges()],
    )
    return SteinerForestInstance(
        relabeled,
        {mapping[v]: label for v, label in inst.labels.items()},
    )


class TestStructuralInvariants:
    """Every family×placement emits well-formed, reproducible instances."""

    @pytest.mark.parametrize("family,placement", MATRIX)
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=6, deadline=None)
    def test_well_formed_and_deterministic(self, family, placement, seed):
        inst = build_placed_instance(family, placement, seed)
        graph = inst.graph
        # Same seed ⇒ identical instance hash.
        again = build_placed_instance(family, placement, seed)
        assert instance_hash(inst) == instance_hash(again)
        # Connected, integer labels 0..n-1, positive integer weights.
        assert graph.is_connected()
        assert set(graph.nodes) == set(range(graph.num_nodes))
        for u, v, w in graph.edges():
            assert isinstance(w, int) and not isinstance(w, bool)
            assert w >= 1
        # The placement honored the request: 2 disjoint size-2 components.
        assert inst.num_components == 2
        assert inst.num_terminals == 4
        assert all(len(c) == 2 for c in inst.components.values())

    @pytest.mark.parametrize("placement", sorted(TERMINAL_PLACEMENTS))
    def test_placements_actually_consult_their_rng(self, placement):
        # Placements draw from their rng: on one fixed graph, sweeping
        # the placement seed must produce more than one terminal set
        # (uniform/clustered/far_pairs anchor randomly; hub_spoke
        # randomizes its spokes). A strategy that ignored its rng would
        # emit ten identical instances here.
        graph = GRAPH_FAMILIES["gnp"].build(random.Random(0))
        hashes = {
            instance_hash(
                place_terminals(placement, graph, 2, 2, random.Random(seed))
            )
            for seed in range(10)
        }
        assert len(hashes) >= 2


class TestMetamorphicInvariance:
    """Core solver cost is label-independent and weight-linear."""

    @pytest.mark.parametrize("family,placement", MATRIX)
    @given(seed=st.integers(0, 2**32 - 1), factor=st.integers(2, 7))
    @settings(max_examples=2, deadline=None)
    def test_moat_and_distributed_invariant(
        self, family, placement, seed, factor
    ):
        inst = build_placed_instance(family, placement, seed)
        for name in ("moat", "distributed"):
            run, _ = CORE_SOLVERS[name]
            base = run(inst).solution.weight
            scaled = run(scale_weights(inst, factor)).solution.weight
            assert scaled == factor * base, (
                f"{name} cost not linear under ×{factor} weight scaling "
                f"({family} × {placement}, seed {seed})"
            )
            relabeled = run(relabel_order_preserving(inst)).solution.weight
            assert relabeled == base, (
                f"{name} cost changed under order-preserving relabeling "
                f"({family} × {placement}, seed {seed})"
            )

    @pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
    @given(seed=st.integers(0, 2**32 - 1), factor=st.integers(2, 5))
    @settings(max_examples=2, deadline=None)
    def test_rounded_and_sublinear_invariant(self, family, seed, factor):
        # The phase-structured variants run on the uniform placement
        # (the full matrix above already exercises every placement's
        # instances through moat/distributed). Exact cost-linearity
        # under weight scaling does NOT hold for them: the Appendix D
        # growth-phase checkpoints start at the absolute radius µ̂ = 1,
        # so scaling the weights shifts where phases cut growth and the
        # output may legally change. What the paper does guarantee is
        # the (2+ε) ratio on both instances, which sandwiches the
        # scaled cost within a bound² band around factor · base.
        inst = build_placed_instance(family, "uniform", seed)
        for name in ("rounded", "sublinear"):
            run, bound = CORE_SOLVERS[name]
            base = run(inst).solution.weight
            scaled = run(scale_weights(inst, factor)).solution.weight
            assert (
                factor * base / bound <= scaled <= factor * base * bound
            ), (
                f"{name} cost left the ratio band under ×{factor} weight "
                f"scaling ({family}, seed {seed}): {base} → {scaled}"
            )
            relabeled = run(relabel_order_preserving(inst)).solution.weight
            assert relabeled == base, (
                f"{name} not relabel-invariant ({family}, seed {seed})"
            )


class TestDifferentialCorrectness:
    """Approximations vs the exact optimum on every new family."""

    @pytest.mark.parametrize("family", sorted(NEW_FAMILIES))
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=3, deadline=None)
    def test_feasible_and_within_paper_ratio(self, family, seed):
        inst = build_placed_instance(
            family, "uniform", seed, **NEW_FAMILIES[family]
        )
        opt = steiner_forest_cost(inst)
        for name, (run, bound) in CORE_SOLVERS.items():
            solution = run(inst).solution
            # Feasible: every terminal pair of every component connected.
            solution.assert_feasible(inst)
            for u, v in inst.component_pairs():
                assert solution.connects(u, v), (
                    f"{name} left {u}–{v} disconnected ({family}, {seed})"
                )
            # Sandwiched: OPT ≤ cost ≤ bound · OPT.
            assert solution.weight >= opt, (
                f"{name} beat the exact optimum ({family}, seed {seed}) — "
                f"impossible; the exact solver or feasibility check is wrong"
            )
            assert solution.weight <= bound * opt, (
                f"{name} ratio {solution.weight}/{opt} exceeds the paper "
                f"bound {bound} ({family}, seed {seed})"
            )
