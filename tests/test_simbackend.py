"""Tests for the simulation-backend subsystem (repro.simbackend)."""

import json

import pytest

from repro.congest.simulator import (
    EchoBroadcast,
    FloodMaxLeaderElection,
    NodeProgram,
    Simulator,
)
from repro.exceptions import CongestViolationError, SimulationError
from repro.simbackend import (
    BACKENDS,
    FlatArrayBackend,
    ShardedBackend,
    SimulationBackend,
    build_backend,
    is_default_backend,
    normalize_backend,
)

ALL_BACKENDS = sorted(BACKENDS)


class TestSpecNormalization:
    def test_none_and_name_and_dict(self):
        assert normalize_backend(None) == {"name": "reference", "params": {}}
        assert normalize_backend("flatarray") == {
            "name": "flatarray", "params": {},
        }
        spec = normalize_backend(
            {"name": "sharded", "params": {"num_shards": 2}}
        )
        assert spec == {"name": "sharded", "params": {"num_shards": 2}}

    def test_backend_instance_round_trips(self):
        backend = ShardedBackend(num_shards=3)
        spec = normalize_backend(backend)
        clone = build_backend(json.loads(json.dumps(spec)))
        assert isinstance(clone, ShardedBackend)
        assert clone.num_shards == 3

    def test_default_detection(self):
        assert is_default_backend(None)
        assert is_default_backend("reference")
        assert not is_default_backend("flatarray")
        assert not is_default_backend(
            {"name": "reference", "params": {"x": 1}}
        )

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="unexpected backend spec keys"):
            normalize_backend({"name": "flatarray", "oops": 1})
        with pytest.raises(ValueError, match="unknown simulation backend"):
            build_backend("quantum")
        with pytest.raises(ValueError, match="bad parameters"):
            build_backend({"name": "sharded", "params": {"nope": 1}})
        with pytest.raises(TypeError):
            normalize_backend(42)

    def test_registry_covers_all_builtins(self):
        # The numpy tier registers exactly when the optional extra is
        # importable (the registry's own gate — find_spec would call a
        # present-but-broken numpy "available"); the dependency-free
        # registry stays four-strong.
        expected = {"reference", "flatarray", "sharded", "auto"}
        try:
            import numpy  # noqa: F401
        except ImportError:
            pass
        else:
            expected.add("numpy")
        assert set(BACKENDS) == expected
        for name, cls in BACKENDS.items():
            assert issubclass(cls, SimulationBackend)
            assert cls.name == name

    def test_instance_passes_through_build(self):
        backend = FlatArrayBackend()
        assert build_backend(backend) is backend

    def test_sharded_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardedBackend(num_shards=0)


class TestFacadeDelegation:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_simulator_exposes_backend(self, path5, backend):
        programs = {v: FloodMaxLeaderElection() for v in path5.nodes}
        sim = Simulator(path5, programs, backend=backend)
        assert sim.backend.name == backend
        assert sim.round == 0
        rounds = sim.run_to_completion()
        assert sim.round == rounds
        assert sim.all_halted or not sim.has_pending

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_violations_surface_through_any_backend(self, path5, backend):
        class Bad(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(4, "x")

            def on_round(self, ctx, inbox):
                ctx.halt()

        sim = Simulator(
            path5, {v: Bad() for v in path5.nodes}, backend=backend
        )
        with pytest.raises(CongestViolationError, match="non-neighbor"):
            try:
                sim.run_to_completion()
            finally:
                sim.close()

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_double_send_rejected(self, path5, backend):
        class Chatty(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(1, "a")
                    ctx.send(1, "b")

            def on_round(self, ctx, inbox):
                ctx.halt()

        sim = Simulator(
            path5, {v: Chatty() for v in path5.nodes}, backend=backend
        )
        with pytest.raises(CongestViolationError, match="already sent"):
            try:
                sim.run_to_completion()
            finally:
                sim.close()

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_max_rounds_guard(self, path5, backend):
        class Forever(NodeProgram):
            def on_start(self, ctx):
                for v in ctx.neighbors:
                    ctx.send(v, "ping")

            def on_round(self, ctx, inbox):
                for v in ctx.neighbors:
                    ctx.send(v, "ping")

        sim = Simulator(
            path5, {v: Forever() for v in path5.nodes}, backend=backend
        )
        with pytest.raises(SimulationError, match="did not quiesce"):
            sim.run_to_completion(max_rounds=5)


class SlotFlood(FloodMaxLeaderElection):
    """Module-level (sharded programs must pickle by qualified name):
    FloodMax with an extra ``__slots__``-declared counter."""

    __slots__ = ("seen_rounds",)

    def __init__(self):
        super().__init__()
        self.seen_rounds = 0

    def on_round(self, ctx, inbox):
        self.seen_rounds += 1
        super().on_round(ctx, inbox)


class TestShardedStateSync:
    def test_final_program_state_reaches_caller_objects(self, grid33):
        programs = {v: EchoBroadcast(0) for v in grid33.nodes}
        sim = Simulator(
            grid33, programs, backend=ShardedBackend(num_shards=3)
        )
        sim.run_to_completion()
        # The worker-side executions were written back into the exact
        # objects the caller constructed.
        assert all(p.informed and p.done for p in programs.values())
        assert programs[0].parent is None

    def test_close_is_idempotent(self, path5):
        programs = {v: FloodMaxLeaderElection() for v in path5.nodes}
        sim = Simulator(path5, programs, backend="sharded")
        sim.run_to_completion()
        sim.close()
        sim.close()
        assert all(p.leader == 4 for p in programs.values())

    def test_manual_stepping_syncs_on_quiescence(self, path5):
        programs = {v: FloodMaxLeaderElection() for v in path5.nodes}
        sim = Simulator(
            path5, programs, backend=ShardedBackend(num_shards=2)
        )
        sim.start()
        while sim.step():
            pass
        try:
            assert all(p.leader == 4 for p in programs.values())
        finally:
            sim.close()

    def test_unsyncable_program_state_fails_loudly(self, path5):
        # A program that grows unpicklable state mid-run cannot be
        # collected back from the workers; run_to_completion must raise
        # rather than return a round count with stale caller-side state.
        class Sticky(FloodMaxLeaderElection):
            def on_round(self, ctx, inbox):
                self.callback = lambda: None  # unpicklable
                super().on_round(ctx, inbox)

        programs = {v: Sticky() for v in path5.nodes}
        sim = Simulator(
            path5, programs, backend=ShardedBackend(num_shards=2)
        )
        with pytest.raises(Exception):
            sim.run_to_completion()
        # The worker pool was still torn down.
        assert sim.backend._conns == [] and sim.backend._procs == []

    def test_more_shards_than_nodes_clamped(self, triangle):
        programs = {v: FloodMaxLeaderElection() for v in triangle.nodes}
        sim = Simulator(
            triangle, programs, backend=ShardedBackend(num_shards=16)
        )
        sim.run_to_completion()
        assert all(p.leader == 2 for p in programs.values())

    def test_slots_program_state_syncs_back(self, path5):
        programs = {v: SlotFlood() for v in path5.nodes}
        sim = Simulator(
            path5, programs, backend=ShardedBackend(num_shards=2)
        )
        sim.run_to_completion()
        # Both the dict state (leader) and the slot state (seen_rounds)
        # reached the caller's objects.
        assert all(p.leader == 4 for p in programs.values())
        assert all(p.seen_rounds > 0 for p in programs.values())

    def test_rebinding_reused_backend_closes_old_workers(self, path5, triangle):
        backend = ShardedBackend(num_shards=2)
        first = {v: FloodMaxLeaderElection() for v in path5.nodes}
        sim1 = Simulator(path5, first, backend=backend)
        sim1.start()
        old_procs = list(backend._procs)
        assert old_procs and all(p.is_alive() for p in old_procs)
        # Reusing the instance rebinds it; the old pool must be torn
        # down (and the first execution's partial state synced back).
        second = {v: FloodMaxLeaderElection() for v in triangle.nodes}
        sim2 = Simulator(triangle, second, backend=backend)
        assert all(not p.is_alive() for p in old_procs)
        assert all(p.leader is not None for p in first.values())
        sim2.run_to_completion()
        assert all(p.leader == 2 for p in second.values())


class TestFlatArrayInternals:
    def test_eids_follow_canonical_order(self):
        from repro.model.graph import WeightedGraph
        from repro.netmodel import node_sort_key

        # Mixed-digit IDs: repr order (10 < 2 < 9) must not leak in.
        senders = [2, 9, 10]
        graph = WeightedGraph([5] + senders, [(s, 5, 1) for s in senders])
        programs = {v: FloodMaxLeaderElection() for v in graph.nodes}
        sim = Simulator(graph, programs, backend="flatarray")
        backend = sim.backend
        pairs = list(zip(backend._eid_sender, backend._eid_receiver))
        assert pairs == sorted(
            pairs, key=lambda p: (node_sort_key(p[0]), node_sort_key(p[1]))
        )
        sim.run_to_completion()
        assert all(p.leader == 10 for p in programs.values())
