"""Direct tests for internals not covered via the top-level APIs."""

import math
import random

import pytest

from repro.baselines.spanner import greedy_spanner
from repro.congest import CongestRun, build_bfs_tree, upcast_items
from repro.core.pruning import _grow_clusters
from repro.randomized import build_embedding, first_stage_selection
from repro.randomized.reduced import build_reduced_instance
from repro.workloads import random_connected_graph, terminals_on_graph


class TestGrowClusters:
    def _star_adjacency(self, n):
        adjacency = {0: set(range(1, n))}
        for i in range(1, n):
            adjacency[i] = {0}
        return adjacency

    def test_partitions_all_nodes(self):
        adjacency = self._star_adjacency(9)
        component = set(range(9))
        leader, _ = _grow_clusters(component, adjacency, sigma=3)
        assert set(leader) == component
        # Leaders are members of their own cluster.
        for v, c in leader.items():
            assert leader[c] == c

    def test_path_component_clusters_reach_sigma(self):
        n = 16
        adjacency = {i: set() for i in range(n)}
        for i in range(n - 1):
            adjacency[i].add(i + 1)
            adjacency[i + 1].add(i)
        leader, iterations = _grow_clusters(set(range(n)), adjacency, 4)
        sizes = {}
        for v in range(n):
            sizes[leader[v]] = sizes.get(leader[v], 0) + 1
        assert all(size >= 2 for size in sizes.values())
        assert iterations <= math.ceil(math.log2(4)) + 1

    def test_sigma_one_keeps_singletons(self):
        adjacency = {0: {1}, 1: {0}}
        leader, _ = _grow_clusters({0, 1}, adjacency, 1)
        assert leader[0] != leader[1] or leader[0] == leader[1]  # total map
        assert set(leader) == {0, 1}


class TestGreedySpanner:
    def _metric(self, graph):
        return graph.all_pairs_distances()

    def test_stretch_one_gives_near_complete(self):
        graph = random_connected_graph(8, 0.5, random.Random(1))
        nodes = list(graph.nodes)
        metric = self._metric(graph)
        edges = greedy_spanner(nodes, metric, stretch=1)
        # Stretch 1: every pair must be exactly spanned, so edge count is
        # large (at least a spanning structure of the metric's tight pairs).
        assert len(edges) >= len(nodes) - 1

    def test_high_stretch_sparse(self):
        graph = random_connected_graph(12, 0.6, random.Random(2))
        nodes = list(graph.nodes)
        metric = self._metric(graph)
        sparse = greedy_spanner(nodes, metric, stretch=15)
        dense = greedy_spanner(nodes, metric, stretch=1)
        assert len(sparse) <= len(dense)
        assert len(sparse) >= len(nodes) - 1  # still connected

    def test_connectivity(self):
        graph = random_connected_graph(10, 0.4, random.Random(3))
        nodes = list(graph.nodes)
        edges = greedy_spanner(nodes, self._metric(graph), stretch=3)
        from repro.util import UnionFind

        uf = UnionFind(nodes)
        for u, v in edges:
            uf.union(u, v)
        assert uf.num_sets == 1


class TestEmbeddingAccessors:
    def test_virtual_edge_weight(self, grid33):
        run = CongestRun(grid33)
        emb = build_embedding(grid33, run, random.Random(0))
        assert emb.virtual_edge_weight(0) == emb.beta
        assert emb.virtual_edge_weight(3) == emb.beta * 8

    def test_ancestor_at_untruncated(self, grid33):
        run = CongestRun(grid33)
        emb = build_embedding(grid33, run, random.Random(0))
        for v in grid33.nodes:
            target, truncated = emb.ancestor_at(v, 0)
            assert not truncated
            assert target == emb.ancestors[v][0]

    def test_ancestor_at_truncated(self, grid44):
        run = CongestRun(grid44)
        emb = build_embedding(
            grid44, run, random.Random(1), truncate_at=4
        )
        for v in grid44.nodes:
            if emb.truncation_level[v] < emb.levels:
                target, truncated = emb.ancestor_at(
                    v, emb.truncation_level[v]
                )
                assert truncated
                assert target in emb.s_nodes


class TestReducedInstanceMapping:
    def test_map_back_returns_graph_edges(self):
        graph = random_connected_graph(16, 0.3, random.Random(4))
        inst = terminals_on_graph(graph, 2, 3, random.Random(4))
        run = CongestRun(graph)
        emb = build_embedding(
            graph, run, random.Random(4), truncate_at=4
        )
        stage = first_stage_selection(inst, emb, run)
        reduced = build_reduced_instance(inst, stage, emb.s_nodes, run)
        if reduced is None:
            pytest.skip("first stage resolved everything")
        some_edges = list(reduced.instance.graph.edges())[:5]
        mapped = reduced.map_back([(u, v) for u, v, _ in some_edges])
        for u, v in mapped:
            assert graph.has_edge(u, v)

    def test_reduced_weights_are_minima(self):
        graph = random_connected_graph(14, 0.35, random.Random(6))
        inst = terminals_on_graph(graph, 2, 2, random.Random(6))
        run = CongestRun(graph)
        emb = build_embedding(
            graph, run, random.Random(6), truncate_at=3
        )
        stage = first_stage_selection(inst, emb, run)
        reduced = build_reduced_instance(inst, stage, emb.s_nodes, run)
        if reduced is None:
            pytest.skip("first stage resolved everything")
        for u, v, w in reduced.instance.graph.edges():
            iu, iv = reduced.inducing_edge[(u, v)]
            assert graph.weight(iu, iv) == w


class TestSelectionWithLargerComponents:
    def test_three_terminal_components_resolve(self):
        graph = random_connected_graph(15, 0.35, random.Random(8))
        inst = terminals_on_graph(graph, 2, 3, random.Random(8))
        run = CongestRun(graph)
        emb = build_embedding(graph, run, random.Random(8))
        stage = first_stage_selection(inst, emb, run)
        from repro.model import ForestSolution

        ForestSolution(graph, stage.edges).assert_feasible(inst)


class TestCongestMisc:
    def test_custom_bandwidth(self, path5):
        run = CongestRun(path5, bandwidth_bits=10)
        run.tick({(0, 1): 1})
        assert run.bits == 10

    def test_upcast_empty_items(self, grid33):
        run = CongestRun(grid33)
        tree = build_bfs_tree(grid33, run)
        assert upcast_items(tree, {}, run) == []

    def test_bfs_explicit_root(self, grid33):
        run = CongestRun(grid33)
        tree = build_bfs_tree(grid33, run, root=4)
        assert tree.root == 4
        assert tree.parent[4] is None
