"""Tests for the DSF-CR ↔ DSF-IC transforms (Lemmas 2.3, 2.4)."""


from repro.congest import (
    CongestRun,
    distributed_minimalize,
    distributed_requests_to_components,
)
from repro.model import (
    ConnectionRequestInstance,
    ForestSolution,
    SteinerForestInstance,
)
from repro.model.transforms import (
    components_to_requests,
    minimalize_instance,
    requests_to_components,
)
from tests.conftest import make_random_instance


class TestCentralizedTransforms:
    def test_requests_to_components_merges_transitively(self, grid44):
        cr = ConnectionRequestInstance(grid44, {0: {1}, 1: {2}, 5: {6}})
        ic = requests_to_components(cr)
        assert ic.label(0) == ic.label(1) == ic.label(2)
        assert ic.label(5) == ic.label(6)
        assert ic.label(0) != ic.label(5)

    def test_requests_to_components_equivalent_feasible_sets(self, grid44):
        cr = ConnectionRequestInstance(grid44, {0: {1}, 1: {2}})
        ic = requests_to_components(cr)
        path = ForestSolution(grid44, [(0, 1), (1, 2)])
        assert path.is_feasible(cr) and path.is_feasible(ic)
        partial = ForestSolution(grid44, [(0, 1)])
        assert not partial.is_feasible(cr) and not partial.is_feasible(ic)

    def test_minimalize_drops_singletons(self, grid44):
        ic = SteinerForestInstance(grid44, {0: "a", 15: "a", 3: "b"})
        minimal = minimalize_instance(ic)
        assert minimal.is_minimal()
        assert minimal.terminals == frozenset({0, 15})

    def test_minimalize_identity_on_minimal(self, grid_instance_2comp):
        assert (
            minimalize_instance(grid_instance_2comp).labels
            == grid_instance_2comp.labels
        )

    def test_components_to_requests_roundtrip(self, grid_instance_2comp):
        cr = components_to_requests(grid_instance_2comp)
        back = requests_to_components(cr)
        # Same partition of terminals (labels may be renamed).
        orig = sorted(
            sorted(c) for c in grid_instance_2comp.components.values()
        )
        again = sorted(sorted(c) for c in back.components.values())
        assert orig == again


class TestDistributedTransforms:
    def test_matches_centralized_requests(self, grid44):
        cr = ConnectionRequestInstance(
            grid44, {0: {15}, 15: {3}, 5: {6}, 9: {10, 11}}
        )
        run = CongestRun(grid44)
        dist = distributed_requests_to_components(cr, run)
        cent = requests_to_components(cr)
        assert dist.labels == cent.labels
        assert run.rounds > 0

    def test_matches_centralized_minimalize(self, grid44):
        ic = SteinerForestInstance(
            grid44, {0: "a", 15: "a", 3: "b", 7: "c", 8: "c", 9: "c"}
        )
        run = CongestRun(grid44)
        dist = distributed_minimalize(ic, run)
        assert dist.labels == minimalize_instance(ic).labels

    def test_requests_round_bound_O_D_plus_t(self, grid44):
        """Lemma 2.3: O(D + t) rounds."""
        cr = ConnectionRequestInstance(grid44, {0: {15}, 3: {12}, 5: {10}})
        run = CongestRun(grid44)
        distributed_requests_to_components(cr, run)
        d = grid44.unweighted_diameter()
        t = cr.num_terminals
        assert run.rounds <= 12 * (d + t)

    def test_minimalize_round_bound_O_D_plus_k(self, grid44):
        """Lemma 2.4: O(D + k) rounds."""
        ic = SteinerForestInstance(
            grid44, {0: "a", 15: "a", 3: "b", 12: "b", 5: "c"}
        )
        run = CongestRun(grid44)
        distributed_minimalize(ic, run)
        d = grid44.unweighted_diameter()
        k = ic.num_components
        assert run.rounds <= 12 * (d + k)

    def test_random_instances_match(self):
        for seed in range(5):
            ic = make_random_instance(seed)
            cr = components_to_requests(ic)
            run = CongestRun(ic.graph)
            dist = distributed_requests_to_components(cr, run)
            # Partitions agree with the original components.
            orig = sorted(sorted(c) for c in ic.components.values()
                          if len(c) >= 2)
            got = sorted(sorted(c) for c in dist.components.values()
                         if len(c) >= 2)
            assert orig == got
