"""Unit tests for problem instances and their invariants."""

import pytest

from repro.exceptions import InstanceValidationError
from repro.model import ConnectionRequestInstance, SteinerForestInstance
from repro.model.instance import instance_from_components


class TestSteinerForestInstance:
    def test_parameters(self, grid44):
        inst = SteinerForestInstance(
            grid44, {0: "a", 15: "a", 3: "b", 12: "b", 5: "c"}
        )
        assert inst.num_terminals == 5
        assert inst.num_components == 3
        assert inst.terminals == frozenset({0, 3, 5, 12, 15})

    def test_components_grouping(self, grid44):
        inst = SteinerForestInstance(grid44, {0: "a", 15: "a", 3: "b"})
        assert inst.components["a"] == frozenset({0, 15})
        assert inst.components["b"] == frozenset({3})

    def test_label_lookup(self, grid44):
        inst = SteinerForestInstance(grid44, {0: "a"})
        assert inst.label(0) == "a"
        assert inst.label(1) is None

    def test_minimality(self, grid44):
        minimal = SteinerForestInstance(grid44, {0: "a", 15: "a"})
        assert minimal.is_minimal()
        non_minimal = SteinerForestInstance(grid44, {0: "a", 15: "a", 3: "b"})
        assert not non_minimal.is_minimal()

    def test_trivial(self, grid44):
        assert SteinerForestInstance(grid44, {0: "a"}).is_trivial()
        assert SteinerForestInstance(grid44, {}).is_trivial()
        assert not SteinerForestInstance(grid44, {0: "a", 1: "a"}).is_trivial()

    def test_component_pairs(self, grid44):
        inst = SteinerForestInstance(grid44, {0: "a", 15: "a", 1: "a"})
        pairs = inst.component_pairs()
        assert len(pairs) == 3  # clique on 3 terminals

    def test_rejects_unknown_terminal(self, grid44):
        with pytest.raises(InstanceValidationError):
            SteinerForestInstance(grid44, {99: "a"})

    def test_rejects_none_label(self, grid44):
        with pytest.raises(InstanceValidationError):
            SteinerForestInstance(grid44, {0: None})

    def test_instance_from_components(self, grid44):
        inst = instance_from_components(grid44, [[0, 15], [3, 12]])
        assert inst.num_components == 2
        assert inst.label(0) == inst.label(15)
        assert inst.label(0) != inst.label(3)

    def test_instance_from_overlapping_components_rejected(self, grid44):
        with pytest.raises(InstanceValidationError):
            instance_from_components(grid44, [[0, 15], [15, 3]])


class TestConnectionRequestInstance:
    def test_terminals_include_targets(self, grid44):
        inst = ConnectionRequestInstance(grid44, {0: {15}})
        assert inst.terminals == frozenset({0, 15})
        assert inst.num_terminals == 2

    def test_demand_pairs_deduplicated(self, grid44):
        inst = ConnectionRequestInstance(grid44, {0: {15}, 15: {0}})
        assert inst.demand_pairs() == [(0, 15)]

    def test_asymmetric_requests_allowed(self, grid44):
        # The Lemma 3.1 reduction uses asymmetric requests.
        inst = ConnectionRequestInstance(grid44, {0: {15}})
        assert inst.requests_of(0) == frozenset({15})
        assert inst.requests_of(15) == frozenset()

    def test_empty_request_sets_dropped(self, grid44):
        inst = ConnectionRequestInstance(grid44, {0: set()})
        assert inst.num_terminals == 0

    def test_rejects_self_request(self, grid44):
        with pytest.raises(InstanceValidationError):
            ConnectionRequestInstance(grid44, {0: {0}})

    def test_rejects_unknown_nodes(self, grid44):
        with pytest.raises(InstanceValidationError):
            ConnectionRequestInstance(grid44, {0: {99}})
        with pytest.raises(InstanceValidationError):
            ConnectionRequestInstance(grid44, {99: {0}})
