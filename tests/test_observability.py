"""The observability surface: metrics, exposition, flight recorder, top.

Covers the PR 8 layer end to end at three depths:

* unit — the fixed-bucket :class:`Histogram` (quantiles, merge, empty
  JSON shape), :class:`Gauge` defaults, the Prometheus renderer (a
  golden snapshot), :class:`RingSink` eviction invariants, and the
  :class:`FlightRecorder` triggers;
* service — the daemon's per-outcome counters/gauges/histograms after
  a known request mix, the ``metrics`` protocol frame transcript, and
  the acceptance pin that an induced worker crash leaves a readable
  flight dump whose last events name the failing job key;
* CLI — ``repro metrics`` scraped live from a unix-socket daemon,
  ``repro flight show|dump``, ``repro report --html``, and the pure
  :func:`format_top` renderer.
"""

import json
import math

import pytest

from repro.cli import main
from repro.serve import protocol
from repro.serve.loadgen import launch_daemon, single_job_spec, stop_daemon
from repro.serve.server import ServeServer
from repro.serve.service import ServiceStats, SolverService
from repro.serve.top import format_top
from repro.telemetry import (
    BUCKET_BOUNDS,
    FlightRecorder,
    JsonlSink,
    MetricsRegistry,
    RingSink,
    RunManifest,
    Telemetry,
    latest_dump,
    metric_name,
    read_events,
    render_prometheus,
)
from repro.telemetry.metrics import BUCKET_COUNT, Gauge, Histogram
from repro.telemetry.report_html import render_html_report
from tests.test_serve import _poison_worker, _spec, converse, run

# ---------------------------------------------------------------------------
# histograms and gauges
# ---------------------------------------------------------------------------

def test_histogram_buckets_are_log_spaced_and_shared():
    assert len(BUCKET_BOUNDS) == BUCKET_COUNT
    for lo, hi in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
        assert hi == pytest.approx(2.0 * lo)
    h = Histogram("h")
    assert len(h.buckets) == BUCKET_COUNT + 1  # finite + overflow


def test_histogram_quantiles_track_observations():
    h = Histogram("h")
    for value in (2e-6, 3e-6, 4e-6):
        h.observe(value)
    assert h.count == 3
    assert h.min == 2e-6 and h.max == 4e-6
    # Interpolated inside the (2e-6, 4e-6] bucket, clamped to observed.
    assert h.quantile(0.5) == pytest.approx(2.5e-6)
    assert h.quantile(0.0) == 2e-6
    assert h.quantile(1.0) == 4e-6
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_overflow_bucket_quantile_stays_finite():
    h = Histogram("h")
    huge = BUCKET_BOUNDS[-1] * 10  # beyond every finite bucket
    h.observe(huge)
    assert h.buckets[BUCKET_COUNT] == 1
    assert h.quantile(0.99) == huge
    assert math.isfinite(h.to_dict()["p99"])


def test_histogram_merge_sums_samples():
    a, b = Histogram("a"), Histogram("b")
    a.observe(1e-6)
    a.observe(1e-3)
    b.observe(5.0)
    a.merge(b)
    assert a.count == 3
    assert a.total == pytest.approx(1e-6 + 1e-3 + 5.0)
    assert a.min == 1e-6 and a.max == 5.0
    assert sum(a.buckets) == 3
    # Merged quantiles reflect the union of samples.
    assert a.quantile(1.0) == 5.0


def test_histogram_empty_to_dict_is_json_clean():
    empty = Histogram("h").to_dict()
    assert empty == {"count": 0}
    # No inf/-inf anywhere: the dict must survive strict JSON.
    json.dumps(empty, allow_nan=False)
    h = Histogram("h")
    h.observe(0.25)
    json.dumps(h.to_dict(), allow_nan=False)


def test_gauge_reads_zero_until_set():
    g = Gauge("g")
    assert g.value == 0 and g.unset
    g.set(7)
    assert g.value == 7 and not g.unset


# ---------------------------------------------------------------------------
# prometheus exposition
# ---------------------------------------------------------------------------

def test_metric_name_sanitization():
    assert metric_name("serve.cache.hit") == "repro_serve_cache_hit"
    assert metric_name("a b/c", prefix="") == "a_b_c"


def test_render_prometheus_golden():
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(3)
    registry.gauge("serve.inflight").set(2)
    hist = registry.histogram("serve.request.seconds")
    for value in (2e-6, 3e-6, 4e-6):
        hist.observe(value)
    assert render_prometheus(registry.snapshot()) == (
        "# TYPE repro_serve_requests_total counter\n"
        "repro_serve_requests_total 3\n"
        "# TYPE repro_serve_inflight gauge\n"
        "repro_serve_inflight 2\n"
        "# TYPE repro_serve_request_seconds histogram\n"
        'repro_serve_request_seconds_bucket{le="2e-06"} 1\n'
        'repro_serve_request_seconds_bucket{le="4e-06"} 3\n'
        'repro_serve_request_seconds_bucket{le="+Inf"} 3\n'
        "repro_serve_request_seconds_sum 9e-06\n"
        "repro_serve_request_seconds_count 3\n"
        "# TYPE repro_serve_request_seconds_p50 gauge\n"
        "repro_serve_request_seconds_p50 2.5e-06\n"
        "# TYPE repro_serve_request_seconds_p95 gauge\n"
        "repro_serve_request_seconds_p95 3.85e-06\n"
        "# TYPE repro_serve_request_seconds_p99 gauge\n"
        "repro_serve_request_seconds_p99 3.97e-06\n"
    )


def test_render_prometheus_skips_non_numeric_gauges():
    registry = MetricsRegistry()
    registry.gauge("serve.mode").set("draining")
    registry.gauge("serve.ok").set(True)  # bools are not numbers here
    assert render_prometheus(registry.snapshot()) == ""


# ---------------------------------------------------------------------------
# ring sink and flight recorder
# ---------------------------------------------------------------------------

def test_ring_sink_evicts_fifo_and_counts_everything():
    ring = RingSink(capacity=4)
    for seq in range(10):
        ring.handle({"seq": seq})
    assert len(ring) == 4
    assert ring.seen == 10
    assert [e["seq"] for e in ring.events()] == [6, 7, 8, 9]


def test_ring_sink_rejects_bad_capacity():
    with pytest.raises(ValueError):
        RingSink(capacity=0)


def test_ring_sink_dump_is_a_truncating_snapshot(tmp_path):
    ring = RingSink(capacity=8)
    for seq in range(3):
        ring.handle({"seq": seq})
    path = tmp_path / "nested" / "ring.jsonl"
    assert ring.dump(path) == 3
    assert [e["seq"] for e in read_events(path)] == [0, 1, 2]
    ring.handle({"seq": 3})
    assert ring.dump(path) == 4  # re-dump replaces, never appends
    assert [e["seq"] for e in read_events(path)] == [0, 1, 2, 3]


def test_flight_recorder_dumps_on_terminal_job_failure(tmp_path):
    recorder = FlightRecorder(tmp_path, capacity=16)
    recorder.handle({"event": "job_start", "key": "k1"})
    recorder.handle(
        {"event": "job_end", "status": "failed", "will_retry": True, "key": "k1"}
    )
    assert recorder.dumps == []  # a retry is coming: not an incident yet
    recorder.handle(
        {"event": "job_end", "status": "failed", "will_retry": False, "key": "k1"}
    )
    assert len(recorder.dumps) == 1
    dump = recorder.dumps[0]
    assert "job-failed" in dump.name
    events = read_events(dump)
    assert events[-1]["key"] == "k1" and events[-1]["status"] == "failed"


def test_flight_recorder_dumps_on_pool_rebuild(tmp_path):
    recorder = FlightRecorder(tmp_path, capacity=16)
    recorder.handle({"event": "pool_rebuilt", "generation": 1})
    assert len(recorder.dumps) == 1
    assert "pool-rebuilt" in recorder.dumps[0].name  # reason is sanitized


def test_flight_recorder_close_is_not_a_dump(tmp_path):
    recorder = FlightRecorder(tmp_path, capacity=16)
    recorder.handle({"event": "job_start", "key": "k"})
    recorder.close()
    assert recorder.dumps == []
    assert latest_dump(tmp_path) is None


def test_latest_dump_is_the_lexically_newest(tmp_path):
    assert latest_dump(tmp_path / "missing") is None
    recorder = FlightRecorder(tmp_path, capacity=4, clock=lambda: 0.0)
    recorder.handle({"event": "pool_rebuilt"})
    recorder.handle({"event": "pool_rebuilt"})
    assert len(recorder.dumps) == 2
    assert latest_dump(tmp_path) == recorder.dumps[-1]


def test_worker_crash_leaves_flight_dump_naming_the_job(tmp_path):
    """The acceptance pin: an induced worker crash (a poison job that
    kills its worker on every attempt) leaves a readable flight dump
    whose last events name the failing job key."""
    recorder = FlightRecorder(tmp_path / "flight", capacity=64)
    telemetry = Telemetry(manifest=RunManifest(workload={}), sinks=[recorder])
    spec = _spec("poison-flight")

    async def body():
        service = SolverService(
            store=None, max_workers=1, worker=_poison_worker,
            telemetry=telemetry,
        )
        await service.start()
        try:
            with pytest.raises(Exception):
                await service.submit(spec)
        finally:
            await service.close(drain=False)

    run(body())
    # The crash sequence also triggers pool-rebuild dumps (one per
    # rebuilt pool); the incident we pin is the terminal job failure.
    failed_dumps = sorted(
        (tmp_path / "flight").glob("flight-*-job-failed.jsonl")
    )
    assert failed_dumps, [p.name for p in (tmp_path / "flight").iterdir()]
    events = read_events(failed_dumps[-1])
    last = events[-1]
    assert last["event"] == "job_end" and last["status"] == "failed"
    assert last["will_retry"] is False
    from repro.engine.jobs import expand_jobs

    assert last["key"] == expand_jobs(spec)[0].key


# ---------------------------------------------------------------------------
# jsonl sink durability
# ---------------------------------------------------------------------------

def test_jsonl_sink_flush_and_telemetry_flush(tmp_path):
    path = tmp_path / "stream.jsonl"
    sink = JsonlSink(path)
    telemetry = Telemetry(manifest=RunManifest(workload={}), sinks=[sink])
    telemetry.emit("ping")
    telemetry.flush()  # flush + fsync must leave a fully readable stream
    kinds = [e["event"] for e in read_events(path)]
    assert kinds == ["manifest", "ping"]
    telemetry.close()


# ---------------------------------------------------------------------------
# service metrics
# ---------------------------------------------------------------------------

def test_service_stats_is_a_view_over_the_registry():
    registry = MetricsRegistry()
    stats = ServiceStats(registry)
    assert stats.requests == 0 and stats.executed == 0
    registry.counter("serve.requests").inc(2)
    registry.counter("serve.cache.hit").inc()
    assert stats.requests == 2 and stats.cache_hits == 1
    assert stats.to_dict() == {
        "requests": 2, "jobs": 0, "executed": 0, "cache_hits": 1,
        "deduped": 0, "failed": 0, "pool_rebuilds": 0,
    }
    with pytest.raises(AttributeError):
        stats.nonsense


def test_service_records_per_outcome_metrics():
    async def body():
        service = SolverService(store=None, max_workers=1)
        await service.start()
        try:
            await service.submit(_spec("obs-mix"))      # miss: executed
            await service.submit(_spec("obs-mix"))      # warm: cache hit
        finally:
            await service.close(drain=False)
        return service.metrics.snapshot()

    snapshot = run(body())
    counters = snapshot["counters"]
    assert counters["serve.requests"] == 2
    assert counters["serve.jobs"] == 2
    assert counters["serve.executed"] == 1
    assert counters["serve.cache.hit"] == 1
    assert counters["serve.failed"] == 0
    assert snapshot["gauges"]["serve.inflight"] == 0
    assert snapshot["gauges"]["serve.queue.pending"] == 0
    hists = snapshot["histograms"]
    assert hists["serve.request.seconds"]["count"] == 2
    assert hists["serve.job.executed.seconds"]["count"] == 1
    assert hists["serve.job.hit.seconds"]["count"] == 1


def test_service_shares_the_telemetry_bus_registry():
    telemetry = Telemetry(manifest=RunManifest(workload={}))
    service = SolverService(store=None, telemetry=telemetry)
    assert service.metrics is telemetry.metrics
    detached = SolverService(store=None)
    assert isinstance(detached.metrics, MetricsRegistry)
    assert detached.metrics is not telemetry.metrics


# ---------------------------------------------------------------------------
# the metrics protocol frame
# ---------------------------------------------------------------------------

def test_golden_metrics_frame():
    spec_dict = single_job_spec("obs-frame")

    async def body():
        service = SolverService(store=None, max_workers=1)
        await service.start()
        try:
            from repro.engine.registry import ScenarioSpec

            await service.submit(ScenarioSpec.from_dict(spec_dict))
            server = ServeServer(service)
            return await converse(server, [
                protocol.hello_frame("me"),
                protocol.metrics_frame("r1"),
            ])
        finally:
            await service.close(drain=False)

    replies = run(body())
    assert [f["type"] for f in replies] == ["welcome", "metrics"]
    frame = replies[1]
    assert frame["id"] == "r1"
    assert frame["server"] and "run_id" in frame
    snapshot = frame["metrics"]
    assert snapshot["counters"]["serve.executed"] == 1
    assert snapshot["histograms"]["serve.request.seconds"]["count"] == 1
    # The frame is additive: the version handshake is unchanged.
    assert protocol.PROTOCOL_VERSION == 1
    assert "metrics" in protocol.CLIENT_FRAMES


# ---------------------------------------------------------------------------
# repro top rendering (pure)
# ---------------------------------------------------------------------------

def _top_frame(requests, hits, executed):
    hist = Histogram("serve.request.seconds")
    for _ in range(requests):
        hist.observe(0.002)
    return {
        "type": "metrics", "server": "test-daemon", "uptime": 12.0,
        "run_id": "r-test",
        "metrics": {
            "counters": {
                "serve.requests": requests, "serve.jobs": requests,
                "serve.cache.hit": hits, "serve.executed": executed,
                "serve.pool.rebuilds": 0,
            },
            "gauges": {"serve.inflight": 1, "serve.queue.pending": 2},
            "histograms": {"serve.request.seconds": hist.to_dict()},
        },
    }


def test_format_top_first_poll():
    screen = format_top(_top_frame(8, 4, 4))
    assert "repro top — test-daemon · up 12s · run r-test" in screen
    assert "inflight    1" in screen
    assert "pending    2" in screen
    assert "hit ratio  50.0%" in screen
    row = next(
        line for line in screen.splitlines() if line.startswith("requests")
    )
    assert row.split()[1] == "8"
    assert "2.00ms" in screen  # the request-latency p50 row


def test_format_top_deltas_and_rates():
    screen = format_top(
        _top_frame(10, 5, 5), previous=_top_frame(8, 4, 4), elapsed=2.0
    )
    assert "+2" in screen and "1.0" in screen  # delta and per-sec columns


def test_format_top_idle_daemon():
    screen = format_top({
        "type": "metrics", "server": "idle", "uptime": 1.0,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    })
    assert "(no requests served yet)" in screen


# ---------------------------------------------------------------------------
# HTML run report
# ---------------------------------------------------------------------------

def _report_events():
    return [
        {"event": "manifest", "run_id": "r-html", "schema": 3,
         "workload": {"family": "gnp", "n": 16}},
        {"event": "phase", "phase": "moat_growth", "rounds": 8,
         "messages": 640, "bits": 0, "wall_time": 0.01},
        {"event": "phase", "phase": "pruning", "rounds": 4,
         "messages": 80, "bits": 0, "wall_time": 0.002},
        {"event": "metrics",
         "counters": {"engine.cache.hit": 2}, "gauges": {},
         "histograms": {}},
        {"event": "run_end", "wall_time": 0.5},
    ]


def test_render_html_report_is_self_contained():
    html_text = render_html_report(_report_events(), title="t <&>")
    assert html_text.lower().startswith("<!doctype html>")
    assert "t &lt;&amp;&gt;" in html_text  # titles are escaped
    assert "r-html" in html_text
    assert "moat_growth" in html_text and "pruning" in html_text
    assert 'class="cell hm' in html_text  # heatmap cells
    assert "prefers-color-scheme: dark" in html_text
    assert "engine.cache.hit" in html_text
    # Self-contained: no external fetches of any kind.
    for marker in ("http://", "https://", "<script", "@import"):
        assert marker not in html_text


def test_render_html_report_survives_empty_stream():
    html_text = render_html_report([])
    assert "No manifest event" in html_text
    assert "No phase events" in html_text
    assert "No metrics snapshot" in html_text


def test_heatmap_tooltips_carry_exact_values():
    html_text = render_html_report(_report_events())
    assert "moat_growth · rounds" in html_text
    assert "messages" in html_text


# ---------------------------------------------------------------------------
# CLI: flight show/dump, report --html, live metrics scrape
# ---------------------------------------------------------------------------

def _write_dump(directory):
    recorder = FlightRecorder(directory, capacity=8)
    recorder.handle({"event": "job_start", "key": "k9"})
    recorder.handle(
        {"event": "job_end", "status": "failed", "will_retry": False,
         "key": "k9"}
    )
    return recorder.dumps[0]


def test_flight_cli_show_and_dump(tmp_path, capsys):
    directory = tmp_path / "flight"
    dump = _write_dump(directory)

    assert main(["flight", "show", str(directory)]) == 0
    out = capsys.readouterr().out
    assert f"flight dump {dump}" in out and "k9" in out

    assert main(["flight", "show", str(directory), "--last", "1"]) == 0
    out = capsys.readouterr().out
    assert "2 events" not in out and "1 events" in out

    target = tmp_path / "exported.jsonl"
    assert main(
        ["flight", "dump", str(dump), "--out", str(target)]
    ) == 0
    capsys.readouterr()
    assert [e["key"] for e in read_events(target)] == ["k9", "k9"]


def test_flight_cli_errors_without_dumps(tmp_path, capsys):
    empty = tmp_path / "flight"
    empty.mkdir()
    assert main(["flight", "show", str(empty)]) == 1
    assert "no flight dumps" in capsys.readouterr().err


def test_report_html_cli(tmp_path, capsys):
    stream = tmp_path / "events.jsonl"
    stream.write_text(
        "\n".join(json.dumps(e) for e in _report_events()) + "\n",
        encoding="utf-8",
    )
    out = tmp_path / "report.html"
    assert main(
        ["report", "--html", str(out), "--events", str(stream)]
    ) == 0
    capsys.readouterr()
    assert "moat_growth" in out.read_text(encoding="utf-8")
    # --html without --events is a usage error, not a crash.
    assert main(["report", "--html", str(out)]) == 2
    assert "--events" in capsys.readouterr().err


def test_metrics_cli_scrapes_a_live_daemon(tmp_path, capsys):
    """End-to-end acceptance: a unix-socket daemon with a known request
    mix, scraped through ``repro metrics`` — exact counters in --json,
    valid exposition with quantiles in --prom."""
    from repro.serve.client import ServeClient

    socket_path = tmp_path / "serve.sock"
    daemon = launch_daemon(
        socket_path, tmp_path / "store.jsonl", workers=1,
        extra_args=("--quiet", "--no-flight"),
    )
    try:
        with ServeClient(socket_path=str(socket_path)) as client:
            client.submit(spec=single_job_spec("cli-scrape"))  # miss
            client.submit(spec=single_job_spec("cli-scrape"))  # hit

        assert main(["metrics", "--socket", str(socket_path), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["serve.requests"] == 2
        assert snapshot["counters"]["serve.executed"] == 1
        assert snapshot["counters"]["serve.cache.hit"] == 1
        assert snapshot["histograms"]["serve.request.seconds"]["count"] == 2

        assert main(["metrics", "--socket", str(socket_path), "--prom"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 2" in text
        assert 'repro_serve_request_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_serve_request_seconds_p99" in text
    finally:
        assert stop_daemon(daemon) == 0


def test_metrics_cli_without_daemon(tmp_path, capsys):
    rc = main(["metrics", "--socket", str(tmp_path / "none.sock")])
    assert rc == 1
    assert "transport" in capsys.readouterr().err
