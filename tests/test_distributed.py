"""Tests for the distributed deterministic algorithm (Theorem 4.17)."""

import pytest

from repro.congest import CongestRun
from repro.core import distributed_moat_growing, moat_growing
from repro.exact import steiner_forest_cost
from repro.model import SteinerForestInstance
from tests.conftest import make_random_instance


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_centralized_weight(self, seed):
        """The emulation reproduces Algorithm 1's output weight
        (Lemma 4.13: same merges, same paths up to tie-breaking)."""
        inst = make_random_instance(seed, max_weight=40)
        central = moat_growing(inst)
        dist = distributed_moat_growing(inst)
        assert dist.solution.weight == central.solution.weight

    @pytest.mark.parametrize("seed", range(10))
    def test_two_approximation(self, seed):
        inst = make_random_instance(seed)
        opt = steiner_forest_cost(inst)
        dist = distributed_moat_growing(inst)
        dist.solution.assert_feasible(inst)
        if opt > 0:
            assert dist.solution.weight <= 2 * opt

    @pytest.mark.parametrize("seed", range(8))
    def test_merge_sequence_matches_centralized(self, seed):
        """Merge multisets {terminal pairs} agree with Algorithm 1
        (merge order within a phase may permute at equal µ)."""
        inst = make_random_instance(seed, max_weight=50)
        central = moat_growing(inst)
        dist = distributed_moat_growing(inst)
        central_pairs = sorted(
            tuple(sorted((repr(e.v), repr(e.w)))) for e in central.events
        )
        dist_pairs = sorted(
            tuple(sorted((repr(m.terminal_a), repr(m.terminal_b))))
            for m in dist.merges
        )
        assert central_pairs == dist_pairs

    @pytest.mark.parametrize("seed", range(8))
    def test_phase_bound(self, seed):
        """Lemma 4.4: at most 2k merge phases."""
        inst = make_random_instance(seed)
        dist = distributed_moat_growing(inst)
        assert dist.num_phases <= 2 * inst.num_components

    def test_trivial_instance_no_phases(self, grid33):
        inst = SteinerForestInstance(grid33, {0: "x"})
        dist = distributed_moat_growing(inst)
        assert dist.solution.edges == frozenset()
        assert dist.num_phases == 0

    def test_mst_special_case(self, grid33):
        import networkx as nx

        inst = SteinerForestInstance(grid33, {v: 0 for v in grid33.nodes})
        dist = distributed_moat_growing(inst)
        mst = nx.minimum_spanning_tree(grid33.to_networkx())
        expected = sum(d["weight"] for _, _, d in mst.edges(data=True))
        assert dist.solution.weight == expected


class TestRoundComplexity:
    @pytest.mark.parametrize("seed", range(6))
    def test_rounds_within_O_ks_plus_t(self, seed):
        """Theorem 4.17's shape: rounds ≤ c(k·s + t + D)."""
        inst = make_random_instance(seed)
        dist = distributed_moat_growing(inst)
        graph = inst.graph
        s = graph.shortest_path_diameter()
        k = inst.num_components
        t = inst.num_terminals
        d = graph.unweighted_diameter()
        bound = 40 * (2 * k * (s + d) + t + d + 1)
        assert dist.rounds <= bound

    def test_phase_breakdown_recorded(self):
        inst = make_random_instance(0)
        dist = distributed_moat_growing(inst)
        assert "setup" in dist.run.phase_rounds
        assert any(
            name.startswith("phase-") for name in dist.run.phase_rounds
        )

    def test_external_run_ledger_reused(self):
        inst = make_random_instance(1)
        run = CongestRun(inst.graph)
        dist = distributed_moat_growing(inst, run)
        assert dist.run is run
        assert run.rounds == dist.rounds

    def test_congestion_never_violated(self):
        """The simulation enforces one message per edge per round; a
        completed run certifies no violation occurred."""
        inst = make_random_instance(2)
        dist = distributed_moat_growing(inst)
        assert dist.run.messages > 0
