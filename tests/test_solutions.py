"""Unit tests for ForestSolution: feasibility, forests, minimal pruning."""

import pytest

from repro.exceptions import InfeasibleSolutionError
from repro.model import (
    ConnectionRequestInstance,
    ForestSolution,
    SteinerForestInstance,
    WeightedGraph,
)


class TestBasics:
    def test_weight(self, triangle):
        sol = ForestSolution(triangle, [(0, 1), (1, 2)])
        assert sol.weight == 3

    def test_rejects_non_edges(self, path5):
        with pytest.raises(InfeasibleSolutionError):
            ForestSolution(path5, [(0, 4)])

    def test_is_forest(self, triangle):
        assert ForestSolution(triangle, [(0, 1), (1, 2)]).is_forest()
        assert not ForestSolution(
            triangle, [(0, 1), (1, 2), (0, 2)]
        ).is_forest()

    def test_edges_canonicalized(self, path5):
        sol = ForestSolution(path5, [(1, 0)])
        assert sol.edges == frozenset({(0, 1)})

    def test_connects(self, path5):
        sol = ForestSolution(path5, [(0, 1), (1, 2)])
        assert sol.connects(0, 2)
        assert not sol.connects(0, 4)

    def test_components(self, path5):
        sol = ForestSolution(path5, [(0, 1), (3, 4)])
        comps = sorted(sorted(c) for c in sol.components())
        assert comps == [[0, 1], [3, 4]]

    def test_union(self, path5):
        a = ForestSolution(path5, [(0, 1)])
        b = ForestSolution(path5, [(1, 2)])
        assert a.union(b).edges == frozenset({(0, 1), (1, 2)})


class TestFeasibility:
    def test_feasible_component(self, path5):
        inst = SteinerForestInstance(path5, {0: "x", 2: "x"})
        sol = ForestSolution(path5, [(0, 1), (1, 2)])
        assert sol.is_feasible(inst)
        sol.assert_feasible(inst)

    def test_infeasible_raises(self, path5):
        inst = SteinerForestInstance(path5, {0: "x", 4: "x"})
        sol = ForestSolution(path5, [(0, 1)])
        assert not sol.is_feasible(inst)
        with pytest.raises(InfeasibleSolutionError):
            sol.assert_feasible(inst)

    def test_feasibility_for_requests(self, path5):
        inst = ConnectionRequestInstance(path5, {0: {2}})
        assert ForestSolution(path5, [(0, 1), (1, 2)]).is_feasible(inst)
        assert not ForestSolution(path5, [(0, 1)]).is_feasible(inst)

    def test_singleton_components_always_satisfied(self, path5):
        inst = SteinerForestInstance(path5, {0: "x"})
        assert ForestSolution(path5, []).is_feasible(inst)


class TestMinimalSubforest:
    def test_drops_dangling_edges(self, path5):
        inst = SteinerForestInstance(path5, {0: "x", 2: "x"})
        sol = ForestSolution(path5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        minimal = sol.minimal_subforest(inst)
        assert minimal.edges == frozenset({(0, 1), (1, 2)})

    def test_drops_internal_bridge_between_demands(self, path5):
        """A path a-b-c-d with demands {a,b} and {c,d}: the middle edge is
        internal (no leaf) yet unneeded — the classic case leaf-pruning
        misses."""
        inst = SteinerForestInstance(
            path5, {0: "x", 1: "x", 3: "y", 4: "y"}
        )
        sol = ForestSolution(path5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        minimal = sol.minimal_subforest(inst)
        assert minimal.edges == frozenset({(0, 1), (3, 4)})

    def test_keeps_shared_star_center(self):
        """Star with demands across opposite arms keeps all used arms."""
        g = WeightedGraph(
            range(5), [(0, i, 1) for i in range(1, 5)]
        )
        inst = SteinerForestInstance(g, {1: "x", 2: "x", 3: "y", 4: "y"})
        sol = ForestSolution(g, [(0, 1), (0, 2), (0, 3), (0, 4)])
        minimal = sol.minimal_subforest(inst)
        assert minimal.edges == sol.edges

    def test_breaks_cycles_first(self, triangle):
        inst = SteinerForestInstance(triangle, {0: "x", 2: "x"})
        sol = ForestSolution(triangle, [(0, 1), (1, 2), (0, 2)])
        minimal = sol.minimal_subforest(inst)
        assert minimal.is_forest()
        assert minimal.is_feasible(inst)
        assert minimal.weight <= sol.weight

    def test_minimality_every_edge_needed(self, grid44):
        inst = SteinerForestInstance(grid44, {0: "x", 15: "x", 3: "y", 12: "y"})
        full = ForestSolution(
            grid44,
            [(u, v) for u, v, _ in grid44.edges()][:0]
        )
        # Build a spanning tree solution then prune.
        import networkx as nx

        tree_edges = list(
            nx.minimum_spanning_tree(grid44.to_networkx()).edges()
        )
        minimal = ForestSolution(grid44, tree_edges).minimal_subforest(inst)
        # Removing any edge must break feasibility.
        for edge in minimal.edges:
            reduced = ForestSolution(
                grid44, minimal.edges - {edge}
            )
            assert not reduced.is_feasible(inst)

    def test_infeasible_input_rejected(self, path5):
        inst = SteinerForestInstance(path5, {0: "x", 4: "x"})
        with pytest.raises(InfeasibleSolutionError):
            ForestSolution(path5, [(0, 1)]).minimal_subforest(inst)

    def test_empty_demands_empty_result(self, path5):
        inst = SteinerForestInstance(path5, {})
        sol = ForestSolution(path5, [(0, 1)])
        assert sol.minimal_subforest(inst).edges == frozenset()
