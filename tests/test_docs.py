"""Documentation gates: links resolve, the CLI reference is complete.

Run by the CI docs job (and tier-1). Two failure modes are caught:

* an intra-repo markdown link in ``docs/`` or ``README.md`` pointing at
  a file that does not exist (docs rot silently otherwise);
* a CLI subcommand that exists in the parser but is not documented in
  ``docs/cli.md`` (new subcommands must ship with reference docs).
"""

import re
from pathlib import Path

import pytest

from repro.cli import _build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(REPO_ROOT.glob("docs/*.md")) + [REPO_ROOT / "README.md"]

#: Markdown inline links: [text](target), skipping images and code spans.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _intra_repo_links(text):
    for target in _LINK.findall(text):
        if "://" in target or target.startswith(("mailto:", "#")):
            continue
        yield target


def test_docs_directory_has_the_required_guides():
    names = {path.name for path in REPO_ROOT.glob("docs/*.md")}
    assert {"architecture.md", "paper-map.md", "cli.md"} <= names


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]
)
def test_intra_repo_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    missing = []
    for target in _intra_repo_links(text):
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            missing.append(target)
    assert not missing, (
        f"{doc.relative_to(REPO_ROOT)} links to missing files: {missing}"
    )


def test_cli_reference_covers_every_subcommand():
    parser = _build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if hasattr(action, "choices") and action.choices
    )
    commands = set(subparsers.choices)
    assert commands, "CLI has no subcommands?"
    cli_doc = (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
    undocumented = [
        command
        for command in sorted(commands)
        if not re.search(rf"(^|[`\s]){re.escape(command)}([`\s]|$)", cli_doc)
    ]
    assert not undocumented, (
        f"docs/cli.md does not mention subcommands {undocumented}; "
        "document them (the reference must stay complete)"
    )


def test_readme_links_the_docs_layer():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for guide in ("docs/architecture.md", "docs/paper-map.md", "docs/cli.md"):
        assert guide in readme, f"README does not link {guide}"
