"""Edge-case and failure-injection tests across the pipeline."""

import random

import pytest

from repro.congest import CongestRun
from repro.congest.transforms import (
    distributed_minimalize,
    distributed_requests_to_components,
)
from repro.core import (
    distributed_moat_growing,
    moat_growing,
    rounded_moat_growing,
    sublinear_moat_growing,
)
from repro.exceptions import SimulationError
from repro.lowerbounds import dsf_cr_gadget
from repro.model import (
    ConnectionRequestInstance,
    SteinerForestInstance,
    WeightedGraph,
)
from repro.randomized import randomized_steiner_forest


@pytest.fixture
def two_nodes():
    return WeightedGraph([0, 1], [(0, 1, 5)])


class TestDegenerateGraphs:
    def test_two_node_pair(self, two_nodes):
        inst = SteinerForestInstance(two_nodes, {0: "x", 1: "x"})
        for solver in (
            moat_growing,
            lambda i: rounded_moat_growing(i, 0.5),
            distributed_moat_growing,
        ):
            result = solver(inst)
            assert result.solution.edges == frozenset({(0, 1)})

    def test_two_node_randomized(self, two_nodes):
        inst = SteinerForestInstance(two_nodes, {0: "x", 1: "x"})
        result = randomized_steiner_forest(inst, rng=random.Random(0))
        assert result.solution.is_feasible(inst)

    def test_all_nodes_same_component(self, grid33):
        inst = SteinerForestInstance(grid33, {v: "all" for v in grid33.nodes})
        result = distributed_moat_growing(inst)
        assert len(result.solution.edges) == grid33.num_nodes - 1

    def test_empty_labels_everywhere(self, grid33):
        inst = SteinerForestInstance(grid33, {})
        for solver in (moat_growing, distributed_moat_growing,
                       lambda i: sublinear_moat_growing(i, 0.5)):
            assert solver(inst).solution.edges == frozenset()

    def test_terminals_adjacent(self, path5):
        inst = SteinerForestInstance(path5, {2: "x", 3: "x"})
        result = distributed_moat_growing(inst)
        assert result.solution.edges == frozenset({(2, 3)})

    def test_many_singleton_components(self, grid33):
        inst = SteinerForestInstance(
            grid33, {v: f"solo-{v}" for v in grid33.nodes}
        )
        assert distributed_moat_growing(inst).solution.edges == frozenset()


class TestFailureInjection:
    def test_max_rounds_aborts_distributed_run(self, grid44):
        inst = SteinerForestInstance(grid44, {0: "x", 15: "x"})
        run = CongestRun(grid44, max_rounds=3)
        with pytest.raises(SimulationError):
            distributed_moat_growing(inst, run)

    def test_max_rounds_aborts_sublinear_run(self, grid44):
        inst = SteinerForestInstance(grid44, {0: "x", 15: "x"})
        run = CongestRun(grid44, max_rounds=3)
        with pytest.raises(SimulationError):
            sublinear_moat_growing(inst, 0.5, run=run)

    def test_max_rounds_aborts_randomized_run(self, grid44):
        inst = SteinerForestInstance(grid44, {0: "x", 15: "x"})
        run = CongestRun(grid44, max_rounds=2)
        with pytest.raises(SimulationError):
            randomized_steiner_forest(inst, rng=random.Random(0), run=run)


class TestTransformEdgeCases:
    def test_no_requests(self, grid33):
        cr = ConnectionRequestInstance(grid33, {})
        run = CongestRun(grid33)
        ic = distributed_requests_to_components(cr, run)
        assert ic.num_terminals == 0

    def test_all_singletons_minimalized_away(self, grid33):
        ic = SteinerForestInstance(
            grid33, {0: "a", 4: "b", 8: "c"}
        )
        run = CongestRun(grid33)
        minimal = distributed_minimalize(ic, run)
        assert minimal.num_terminals == 0

    def test_asymmetric_gadget_requests_through_pipeline(self):
        """Lemma 3.1's gadget uses asymmetric requests; the transform +
        deterministic solver pipeline must handle them end to end."""
        gadget = dsf_cr_gadget(4, {1, 2}, {3, 4})
        run = CongestRun(gadget.instance.graph)
        ic = distributed_requests_to_components(gadget.instance, run)
        result = distributed_moat_growing(ic, run)
        result.solution.assert_feasible(gadget.instance)
        result.solution.assert_feasible(ic)


class TestWeightExtremes:
    def test_huge_weight_spread(self):
        g = WeightedGraph(
            range(4),
            [(0, 1, 1), (1, 2, 10**6), (2, 3, 1), (0, 3, 3 * 10**6)],
        )
        inst = SteinerForestInstance(g, {0: "x", 2: "x"})
        result = distributed_moat_growing(inst)
        assert result.solution.weight == 10**6 + 1

    def test_uniform_weights_many_ties(self, grid44):
        """All-ties instance: outputs may differ from the centralized run
        but must keep the approximation guarantee."""
        inst = SteinerForestInstance(
            grid44, {0: "a", 15: "a", 3: "b", 12: "b"}
        )
        central = moat_growing(inst)
        dist = distributed_moat_growing(inst)
        dist.solution.assert_feasible(inst)
        assert dist.solution.weight <= 2 * central.dual_lower_bound
