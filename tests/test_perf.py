"""The perf subsystem: profiler exactness, zero-effect, fast-path
conformance, and the auto backend.

Three contracts are pinned here:

1. **Profiler exactness** — per-phase counters equal the ledger's own
   accounting on a hand-computable execution, and the injected-clock
   wall-time attribution is exact.
2. **Profiling is free** — attaching a profiler changes nothing about
   the computation: solver outputs and the ledger are byte-identical,
   job cache keys without the flag are unchanged from schema v1–v4, and
   the algorithm seed ignores the flag.
3. **Ledger fast-path conformance** — the distributed and sublinear
   pipelines under a :class:`FastCongestRun` (and under ``auto``)
   reproduce the reference execution field by field across the graph
   family matrix, mirroring the message-level backend conformance
   suite.
"""

import random

import pytest

from repro.congest.bfs import build_bfs_tree
from repro.congest.broadcast import broadcast_items, upcast_items
from repro.congest.run import CongestRun
from repro.congest.simulator import FloodMaxLeaderElection, Simulator
from repro.core.distributed import distributed_moat_growing
from repro.core.moat import moat_growing
from repro.core.sublinear import sublinear_moat_growing
from repro.engine.jobs import Job
from repro.engine.registry import GRAPH_FAMILIES
from repro.engine.runner import execute_job
from repro.exceptions import CongestViolationError
from repro.model.graph import WeightedGraph
from repro.model.instance import SteinerForestInstance
from repro.perf import (
    CompiledTopology,
    FastCongestRun,
    PhaseProfiler,
    make_ledger_run,
    maybe_span,
    render_profile_report,
)
from repro.simbackend import (
    AUTO_THRESHOLD_NODES,
    NUMPY_THRESHOLD_NODES,
    AutoBackend,
    choose_engine_name,
    numpy_tier_available,
)
from repro.workloads import random_instance

requires_numpy = pytest.mark.skipif(
    not numpy_tier_available(),
    reason="optional numpy extra not installed",
)

FAMILY_PARAMS = {
    "gnp": {"n": 14, "p": 0.3},
    "grid": {"rows": 3, "cols": 4},
    "ring": {"num_blobs": 3, "blob_size": 3},
    "powerlaw": {"n": 14, "m_attach": 2},
    "caterpillar": {"spine": 5, "legs": 2},
}


def _instance(family):
    graph = GRAPH_FAMILIES[family].build(
        random.Random(0xE18), **FAMILY_PARAMS[family]
    )
    terminals = {
        graph.nodes[0]: "a",
        graph.nodes[-1]: "a",
        graph.nodes[1]: "b",
        graph.nodes[-2]: "b",
    }
    return SteinerForestInstance(graph, terminals)


def _ledger_fingerprint(result):
    return (
        result.solution.weight,
        sorted(result.solution.edges, key=repr),
        result.rounds,
        result.run.messages,
        sorted(result.run.edge_messages.items(), key=repr),
        dict(result.run.phase_rounds),
    )


class FakeClock:
    """A deterministic perf_counter: advances 1.0 per call."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestPhaseProfiler:
    def test_counters_exact_on_manual_ledger(self):
        graph = WeightedGraph([0, 1, 2], [(0, 1, 1), (1, 2, 1)])
        run = CongestRun(graph)
        profiler = PhaseProfiler(clock=FakeClock())
        profiler.attach(run)
        run.set_phase("alpha")
        run.tick({(0, 1): 1, (1, 2): 1})
        run.tick({(1, 0): 1})
        run.charge_rounds(3, "analytic")
        run.set_phase("beta")
        run.tick()
        run.charge_messages([(0, 1)])
        run.charge_counter({(1, 2): 2}, 2)
        profiler.finish()
        by_name = {s.name: s for s in profiler.phases}
        assert by_name["alpha"].rounds == 5
        assert by_name["alpha"].messages == 3
        assert by_name["beta"].rounds == 1
        assert by_name["beta"].messages == 3
        # Cross-check against the ledger's own accounting.
        totals = profiler.to_dict(bandwidth_bits=run.bandwidth_bits)["totals"]
        assert totals["rounds"] == run.rounds == 6
        assert totals["messages"] == run.messages == 6
        assert totals["bits"] == run.bits

    def test_wall_time_attribution_with_injected_clock(self):
        profiler = PhaseProfiler(clock=FakeClock())
        profiler.switch_phase("outer")  # clock -> 1
        with profiler.span("inner"):  # flush at 2 (outer +1), 3 on exit
            pass
        profiler.finish()  # flush at 4 (outer +1)
        by_name = {s.name: s for s in profiler.phases}
        # Self-time semantics: the inner span's second is not double
        # counted on the phase.
        assert by_name["outer"].wall_time == pytest.approx(2.0)
        assert by_name["outer/inner"].wall_time == pytest.approx(1.0)

    def test_profiler_totals_match_pipeline_ledger(self):
        # Hand-checkable instance: a path, one demand between the ends.
        graph = WeightedGraph(
            [0, 1, 2, 3], [(0, 1, 1), (1, 2, 1), (2, 3, 1)]
        )
        instance = SteinerForestInstance(graph, {0: "a", 3: "a"})
        run = CongestRun(graph)
        profiler = PhaseProfiler()
        profiler.attach(run)
        result = distributed_moat_growing(instance, run=run)
        profiler.finish()
        assert result.solution.weight == 3
        totals = profiler.to_dict()["totals"]
        assert totals["rounds"] == run.rounds
        assert totals["messages"] == run.messages
        # Phase frames cover the solver's narration.
        names = {s.name for s in profiler.phases}
        assert "setup" in names and "path-selection" in names
        assert any(name.startswith("phase-") for name in names)

    def test_phase_switch_inside_span_wins(self):
        # A span wrapped around a whole solver must not pop the phase
        # frame the solver's set_phase installed (and set_phase(None)
        # inside a span must not raise on exit).
        profiler = PhaseProfiler(clock=FakeClock())
        with profiler.span("whole-solve"):
            profiler.switch_phase("setup")
            profiler.add_rounds(2)
        profiler.add_rounds(1)  # still attributed to the live phase
        with profiler.span("outer"):
            profiler.switch_phase(None)
        profiler.finish()
        by_name = {s.name: s for s in profiler.phases}
        assert by_name["setup"].rounds == 3
        assert by_name["whole-solve"].rounds == 0

    def test_maybe_span_without_profiler_is_noop(self):
        with maybe_span(None, "anything"):
            value = 42
        assert value == 42

    def test_render_profile_report_smoke(self):
        profiler = PhaseProfiler(clock=FakeClock())
        profiler.switch_phase("setup")
        profiler.add_rounds(4)
        profiler.add_messages(10)
        profiler.finish()
        record = {
            "scenario": "s",
            "algorithm": "distributed",
            "backend_name": "flatarray",
            "profile": profiler.to_dict(),
        }
        text = render_profile_report([record])
        assert "setup" in text and "flatarray" in text
        assert render_profile_report([]).startswith("no profiled records")

    def test_report_straggler_phases_average_over_the_whole_group(self):
        # A phase only one of two jobs reaches must print half its value
        # ("mean per job" is over the group, not over reaching jobs).
        short = {"phases": [{"phase": "p1", "rounds": 4, "messages": 2,
                             "wall_time": 0.0}]}
        long = {
            "phases": [
                {"phase": "p1", "rounds": 4, "messages": 2, "wall_time": 0.0},
                {"phase": "p2", "rounds": 6, "messages": 8, "wall_time": 0.0},
            ]
        }
        base = {"scenario": "s", "algorithm": "a", "backend_name": "reference"}
        text = render_profile_report(
            [dict(base, profile=short), dict(base, profile=long)]
        )
        p2_row = next(line for line in text.splitlines() if line.startswith("p2"))
        assert "3.0" in p2_row and "4.0" in p2_row


class TestProfilingIsFree:
    def test_solver_output_identical_with_profiler(self):
        instance = _instance("gnp")
        plain = distributed_moat_growing(instance, run=CongestRun(instance.graph))
        run = CongestRun(instance.graph)
        PhaseProfiler().attach(run)
        profiled = distributed_moat_growing(instance, run=run)
        assert _ledger_fingerprint(plain) == _ledger_fingerprint(profiled)

    def test_moat_output_identical_with_profiler(self):
        instance = _instance("grid")
        plain = moat_growing(instance)
        profiled = moat_growing(instance, profiler=PhaseProfiler())
        assert plain.solution.weight == profiled.solution.weight
        assert plain.solution.edges == profiled.solution.edges

    def test_unprofiled_job_identity_is_schema_v4_stable(self):
        legacy = {
            "scenario": "s",
            "family": "gnp",
            "family_params": {"n": 12, "p": 0.3},
            "k": 2,
            "component_size": 2,
            "algorithm": "moat",
            "algo_params": {},
            "seed_index": 0,
            "exact": False,
        }
        job = Job.from_dict(legacy)
        assert job.profile is False
        assert "profile" not in job.identity()
        # The profiled twin hashes to its own key but draws the same
        # coin flips and instance.
        profiled = Job.from_dict(dict(legacy, profile=True))
        assert profiled.key != job.key
        assert profiled.algorithm_seed() == job.algorithm_seed()
        assert profiled.graph_seed() == job.graph_seed()
        assert profiled.placement_seed() == job.placement_seed()

    @pytest.mark.parametrize("algorithm", ["distributed", "moat", "spanner"])
    def test_execute_job_profile_only_adds_payload(self, algorithm):
        base = {
            "scenario": "perf-test",
            "family": "gnp",
            "family_params": {"n": 10, "p": 0.4},
            "k": 2,
            "component_size": 2,
            "algorithm": algorithm,
            "seed_index": 0,
        }
        plain = execute_job(base)
        profiled = execute_job(dict(base, profile=True))
        assert "profile" not in plain
        phases = profiled["profile"]["phases"]
        assert phases and all("wall_time" in row for row in phases)
        for metric in ("weight", "rounds", "messages", "n", "m", "t"):
            if metric in plain["metrics"]:
                assert plain["metrics"][metric] == profiled["metrics"][metric]


class TestLedgerFastPathConformance:
    @pytest.mark.parametrize("family", sorted(FAMILY_PARAMS))
    @pytest.mark.parametrize(
        "engine",
        [
            "flatarray",
            "auto",
            pytest.param("numpy", marks=requires_numpy),
        ],
    )
    def test_distributed_pipeline_matches_reference(self, family, engine):
        instance = _instance(family)
        reference = distributed_moat_growing(
            instance, run=CongestRun(instance.graph)
        )
        if engine == "auto":
            # Force the flat choice at test sizes so auto's delegation
            # is exercised, not just its small-instance identity path.
            fast_run = make_ledger_run(
                {"name": "auto", "params": {"threshold": 1}}, instance.graph
            )
        elif engine == "numpy":
            fast_run = make_ledger_run("numpy", instance.graph)
        else:
            fast_run = FastCongestRun(instance.graph)
        fast = distributed_moat_growing(instance, run=fast_run)
        assert _ledger_fingerprint(reference) == _ledger_fingerprint(fast)
        merges_ref = [
            (m.phase, str(m.mu), m.terminal_a, m.terminal_b, m.edge, m.path)
            for m in reference.merges
        ]
        merges_fast = [
            (m.phase, str(m.mu), m.terminal_a, m.terminal_b, m.edge, m.path)
            for m in fast.merges
        ]
        assert merges_ref == merges_fast

    @pytest.mark.parametrize("family", ["gnp", "grid", "ring"])
    @pytest.mark.parametrize(
        "engine",
        ["flatarray", pytest.param("numpy", marks=requires_numpy)],
    )
    def test_sublinear_pipeline_matches_reference(self, family, engine):
        instance = _instance(family)
        reference = sublinear_moat_growing(
            instance, run=CongestRun(instance.graph)
        )
        fast = sublinear_moat_growing(
            instance, run=make_ledger_run(engine, instance.graph)
        )
        assert _ledger_fingerprint(reference) == _ledger_fingerprint(fast)
        assert reference.sigma == fast.sigma
        assert reference.num_growth_phases == fast.num_growth_phases
        assert reference.num_merge_phases == fast.num_merge_phases

    def test_tree_primitives_match_reference(self):
        instance = _instance("powerlaw")
        graph = instance.graph

        def run_primitives(run):
            tree = build_bfs_tree(graph, run)
            items = upcast_items(
                tree,
                {v: [(repr(v), "payload")] for v in graph.nodes},
                run,
            )
            broadcast_items(tree, items, run)
            return (
                tree.root,
                dict(tree.parent),
                tree.depth,
                items,
                run.rounds,
                run.messages,
                sorted(run.edge_messages.items(), key=repr),
            )

        baseline = run_primitives(CongestRun(graph))
        assert baseline == run_primitives(FastCongestRun(graph))
        if numpy_tier_available():
            assert baseline == run_primitives(make_ledger_run("numpy", graph))

    def test_fast_tick_validation_matches_reference_errors(self):
        graph = WeightedGraph([0, 1, 2], [(0, 1, 1), (1, 2, 1)])
        for traffic in ({(0, 2): 1}, {(0, 1): 2}):
            with pytest.raises(CongestViolationError) as ref_error:
                CongestRun(graph).tick(traffic)
            with pytest.raises(CongestViolationError) as fast_error:
                FastCongestRun(graph).tick(traffic)
            assert str(fast_error.value) == str(ref_error.value)

    def test_fast_tick_max_rounds_matches_reference_error(self):
        from repro.exceptions import SimulationError

        graph = WeightedGraph([0, 1], [(0, 1, 1)])
        errors = []
        for ledger in (
            CongestRun(graph, max_rounds=1),
            FastCongestRun(graph, max_rounds=1),
        ):
            ledger.tick()
            with pytest.raises(SimulationError) as caught:
                ledger.tick()
            errors.append(str(caught.value))
        assert errors[0] == errors[1]

    def test_compiled_topology_shapes(self):
        graph = WeightedGraph([0, 1, 2], [(0, 1, 1), (1, 2, 1)])
        compiled = CompiledTopology(graph)
        assert compiled.num_directed == 4
        assert compiled.degree == {0: 1, 1: 2, 2: 1}
        assert compiled.canon[(1, 0)] == (0, 1)
        assert sum(compiled.full_counter.values()) == 4
        # Tag reprs never collide across hash-equal types.
        assert compiled.tag_repr(1) == "1"
        assert compiled.tag_repr(True) == "True"

    def test_fast_run_rejects_foreign_compilation(self):
        graph_a = WeightedGraph([0, 1], [(0, 1, 1)])
        graph_b = WeightedGraph([0, 1], [(0, 1, 2)])
        with pytest.raises(ValueError):
            FastCongestRun(graph_a, compiled=CompiledTopology(graph_b))


def _path_graph(num_nodes):
    """A cheap connected graph at exactly ``num_nodes`` nodes."""
    return WeightedGraph(
        list(range(num_nodes)),
        [(i, i + 1, 1) for i in range(num_nodes - 1)],
    )


#: The auto heuristic's tier boundaries, one row per side of each
#: crossover: (num_nodes, engine without the numpy extra, engine with
#: it). The defaults are AUTO_THRESHOLD_NODES = 64 and
#: NUMPY_THRESHOLD_NODES = 1024.
TIER_BOUNDARY_CASES = [
    (63, "reference", "reference"),
    (64, "flatarray", "flatarray"),
    (1023, "flatarray", "flatarray"),
    (1024, "flatarray", "numpy"),
]


def _expected_tier(without_numpy, with_numpy):
    return with_numpy if numpy_tier_available() else without_numpy


def _ledger_type(engine_name):
    if engine_name == "reference":
        return CongestRun
    if engine_name == "numpy":
        from repro.perf.npkernels import NumpyCongestRun

        return NumpyCongestRun
    assert engine_name == "flatarray"
    return FastCongestRun


class TestAutoBackend:
    def test_threshold_constants_are_ordered(self):
        assert 1 < AUTO_THRESHOLD_NODES < NUMPY_THRESHOLD_NODES
        assert TIER_BOUNDARY_CASES[0][0] == AUTO_THRESHOLD_NODES - 1
        assert TIER_BOUNDARY_CASES[1][0] == AUTO_THRESHOLD_NODES
        assert TIER_BOUNDARY_CASES[2][0] == NUMPY_THRESHOLD_NODES - 1
        assert TIER_BOUNDARY_CASES[3][0] == NUMPY_THRESHOLD_NODES

    @pytest.mark.parametrize(
        ("num_nodes", "without_numpy", "with_numpy"), TIER_BOUNDARY_CASES
    )
    def test_choose_engine_name_boundaries(
        self, num_nodes, without_numpy, with_numpy
    ):
        expected = _expected_tier(without_numpy, with_numpy)
        assert choose_engine_name(num_nodes) == expected

    @pytest.mark.parametrize(
        ("num_nodes", "without_numpy", "with_numpy"), TIER_BOUNDARY_CASES
    )
    def test_ledger_tier_boundaries(
        self, num_nodes, without_numpy, with_numpy
    ):
        expected = _expected_tier(without_numpy, with_numpy)
        run = make_ledger_run("auto", _path_graph(num_nodes))
        assert type(run) is _ledger_type(expected)

    def test_ledger_heuristic_thresholds(self):
        small = random_instance(8, 2, random.Random(1)).graph
        assert type(make_ledger_run("auto", small)) is CongestRun
        assert type(
            make_ledger_run(
                {"name": "auto", "params": {"threshold": 4}}, small
            )
        ) is FastCongestRun
        assert type(make_ledger_run("flatarray", small)) is FastCongestRun
        assert type(make_ledger_run("reference", small)) is CongestRun
        assert type(make_ledger_run("sharded", small)) is CongestRun
        with pytest.raises(ValueError):
            make_ledger_run("warpdrive", small)
        # Bad engine parameters are rejected exactly like the simulator
        # facade rejects them — one --backend spec, one validation path.
        with pytest.raises(ValueError):
            make_ledger_run(
                {"name": "flatarray", "params": {"typo": 1}}, small
            )
        with pytest.raises(ValueError):
            make_ledger_run(
                {"name": "sharded", "params": {"num_shards": 0}}, small
            )

    @requires_numpy
    def test_ledger_numpy_overrides(self):
        small = random_instance(8, 2, random.Random(1)).graph
        from repro.perf.npkernels import NumpyCongestRun

        assert type(make_ledger_run("numpy", small)) is NumpyCongestRun
        # Lowered thresholds route an 8-node graph to the top tier.
        spec = {
            "name": "auto",
            "params": {"threshold": 4, "numpy_threshold": 8},
        }
        assert type(make_ledger_run(spec, small)) is NumpyCongestRun
        # The reference floor still wins below the first threshold.
        tiny_spec = {
            "name": "auto",
            "params": {"threshold": 64, "numpy_threshold": 1},
        }
        assert type(make_ledger_run(tiny_spec, small)) is CongestRun

    def test_simulator_delegation_picks_by_size(self):
        graph = random_instance(8, 2, random.Random(2)).graph
        programs = {v: FloodMaxLeaderElection() for v in graph.nodes}
        small_sim = Simulator(graph, programs, backend="auto")
        assert small_sim.backend.name == "auto"
        assert small_sim.backend.engine.name == "reference"
        forced = Simulator(
            graph,
            {v: FloodMaxLeaderElection() for v in graph.nodes},
            backend=AutoBackend(threshold=1),
        )
        assert forced.backend.engine.name == "flatarray"
        assert forced.run_to_completion() > 0
        assert all(
            p.leader == max(graph.nodes) for p in forced.programs.values()
        )

    @requires_numpy
    def test_simulator_delegation_picks_numpy_tier(self):
        graph = random_instance(8, 2, random.Random(2)).graph
        forced = Simulator(
            graph,
            {v: FloodMaxLeaderElection() for v in graph.nodes},
            backend=AutoBackend(threshold=1, numpy_threshold=1),
        )
        assert forced.backend.engine.name == "numpy"
        assert forced.run_to_completion() > 0
        assert all(
            p.leader == max(graph.nodes) for p in forced.programs.values()
        )

    def test_spec_round_trip_and_params(self):
        assert AutoBackend().spec() == {"name": "auto", "params": {}}
        assert AutoBackend(threshold=7).spec() == {
            "name": "auto",
            "params": {"threshold": 7},
        }
        assert AutoBackend(numpy_threshold=9).spec() == {
            "name": "auto",
            "params": {"numpy_threshold": 9},
        }
        assert AUTO_THRESHOLD_NODES > 1

    def test_unbound_engine_raises(self):
        with pytest.raises(RuntimeError):
            AutoBackend().engine
