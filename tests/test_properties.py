"""Property-based tests (hypothesis) on core invariants."""

import random

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.core import distributed_moat_growing, moat_growing
from repro.core.rounded import rounded_moat_growing
from repro.model import ForestSolution, WeightedGraph
from repro.model.instance import instance_from_components
from repro.model.transforms import (
    components_to_requests,
    requests_to_components,
)


@st.composite
def small_instances(draw):
    """Random connected weighted graphs with 1–3 components of 2 nodes."""
    n = draw(st.integers(6, 12))
    seed = draw(st.integers(0, 10**6))
    rng = random.Random(seed)
    g = nx.gnp_random_graph(n, 0.45, seed=seed)
    if not nx.is_connected(g):
        g = nx.compose(g, nx.path_graph(n))
    for u, v in g.edges:
        g[u][v]["weight"] = rng.randint(1, 15)
    graph = WeightedGraph.from_networkx(g)
    nodes = list(graph.nodes)
    rng.shuffle(nodes)
    k = draw(st.integers(1, 3))
    components = [nodes[2 * i: 2 * i + 2] for i in range(k)]
    return instance_from_components(graph, components)


class TestMoatProperties:
    @given(small_instances())
    @settings(max_examples=20, deadline=None)
    def test_feasibility_and_dual_sandwich(self, inst):
        """W(sol) ≤ 2 Σ actᵢµᵢ and the solution is a feasible forest."""
        result = moat_growing(inst)
        result.solution.assert_feasible(inst)
        assert result.solution.is_forest()
        if result.events:
            assert result.solution.weight <= 2 * result.dual_lower_bound

    @given(small_instances())
    @settings(max_examples=12, deadline=None)
    def test_distributed_matches_centralized_guarantee(self, inst):
        """With tied path weights the two runs may legally pick different
        least-weight paths (the paper assumes distinct weights, Section 2),
        so hypothesis asserts the *certified* property: both outputs are
        feasible and within twice the centralized dual lower bound.
        (Exact merge-by-merge equality is asserted on tie-free instances
        in tests/test_distributed.py.)"""
        central = moat_growing(inst)
        dist = distributed_moat_growing(inst)
        dist.solution.assert_feasible(inst)
        if central.events:
            assert dist.solution.weight <= 2 * central.dual_lower_bound
            assert central.solution.weight <= 2 * central.dual_lower_bound

    @given(small_instances())
    @settings(max_examples=15, deadline=None)
    def test_rounded_never_better_than_half_dual(self, inst):
        result = rounded_moat_growing(inst, 1)
        result.solution.assert_feasible(inst)
        # Corollary D.1 with ε = 1: 1.5 · W(sol) ≥ ... ≥ dual/... sanity:
        assert result.dual_lower_bound <= 3 * max(1, result.solution.weight)


class TestModelProperties:
    @given(small_instances())
    @settings(max_examples=20, deadline=None)
    def test_minimal_subforest_is_minimal(self, inst):
        result = moat_growing(inst)
        minimal = result.solution
        for edge in minimal.edges:
            reduced = ForestSolution(inst.graph, minimal.edges - {edge})
            assert not reduced.is_feasible(inst)

    @given(small_instances())
    @settings(max_examples=20, deadline=None)
    def test_transform_roundtrip_preserves_partition(self, inst):
        back = requests_to_components(components_to_requests(inst))
        orig = sorted(
            sorted(repr(x) for x in c)
            for c in inst.components.values()
            if len(c) >= 2
        )
        again = sorted(
            sorted(repr(x) for x in c)
            for c in back.components.values()
            if len(c) >= 2
        )
        assert orig == again

    @given(small_instances())
    @settings(max_examples=20, deadline=None)
    def test_metric_ordering(self, inst):
        g = inst.graph
        assert (
            g.unweighted_diameter()
            <= g.shortest_path_diameter()
            <= g.weighted_diameter()
        )
