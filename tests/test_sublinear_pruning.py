"""Tests for the Section 4.2 algorithm and the F.3 fast pruning."""

import math
from fractions import Fraction

import pytest

from repro.congest import CongestRun
from repro.core import fast_pruning, moat_growing, sublinear_moat_growing
from repro.core.rounded import rounded_moat_growing
from repro.exact import steiner_forest_cost
from repro.model import ForestSolution, SteinerForestInstance
from tests.conftest import make_random_instance


class TestSublinear:
    @pytest.mark.parametrize("seed", range(8))
    def test_two_plus_eps_approximation(self, seed):
        inst = make_random_instance(seed)
        opt = steiner_forest_cost(inst)
        result = sublinear_moat_growing(inst, Fraction(1, 2))
        result.solution.assert_feasible(inst)
        if opt > 0:
            assert result.solution.weight <= Fraction(5, 2) * opt

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_algorithm2_output(self, seed):
        inst = make_random_instance(seed)
        central = rounded_moat_growing(inst, Fraction(1, 2))
        result = sublinear_moat_growing(inst, Fraction(1, 2))
        assert result.solution.weight == central.solution.weight

    @pytest.mark.parametrize("seed", range(6))
    def test_growth_phases_logarithmic(self, seed):
        """Lemma F.1 bound on growth phases."""
        inst = make_random_instance(seed)
        result = sublinear_moat_growing(inst, Fraction(1, 2))
        wd = inst.graph.weighted_diameter()
        bound = 3 + math.log(max(2, wd)) / math.log(1.25)
        assert result.num_growth_phases <= bound

    def test_sigma_default(self):
        inst = make_random_instance(4)
        result = sublinear_moat_growing(inst)
        n = inst.graph.num_nodes
        s = inst.graph.shortest_path_diameter()
        t = inst.num_terminals
        assert result.sigma == max(1, math.isqrt(min(s * t, n)))

    def test_trivial_instance(self, grid33):
        inst = SteinerForestInstance(grid33, {0: "x"})
        result = sublinear_moat_growing(inst)
        assert result.solution.edges == frozenset()

    def test_phase_breakdown(self):
        inst = make_random_instance(2)
        result = sublinear_moat_growing(inst)
        assert "setup" in result.run.phase_rounds
        assert "pruning" in result.run.phase_rounds


class TestFastPruning:
    @pytest.mark.parametrize("seed", range(8))
    def test_equals_minimal_subforest(self, seed):
        inst = make_random_instance(seed)
        forest = moat_growing(inst).forest
        pruned = fast_pruning(inst, forest)
        assert (
            pruned.solution.edges
            == forest.minimal_subforest(inst).edges
        )

    def test_round_shape(self):
        """Corollary F.10: Õ(σ + k + D) rounds."""
        inst = make_random_instance(1, n_range=(14, 14))
        forest = moat_growing(inst).forest
        run = CongestRun(inst.graph)
        pruned = fast_pruning(inst, forest, run=run)
        graph = inst.graph
        sigma = pruned.sigma
        k = inst.num_components
        d = graph.unweighted_diameter()
        t = inst.num_terminals
        log_n = math.log2(graph.num_nodes)
        assert pruned.rounds <= 50 * (sigma + k + d + 1) * (1 + log_n)

    def test_explicit_sigma_respected(self):
        inst = make_random_instance(0)
        forest = moat_growing(inst).forest
        pruned = fast_pruning(inst, forest, sigma=2)
        assert pruned.sigma == 2
        assert pruned.solution.is_feasible(inst)

    def test_spanning_tree_input(self, grid44):
        import networkx as nx

        inst = SteinerForestInstance(
            grid44, {0: "a", 15: "a", 3: "b", 12: "b"}
        )
        tree_edges = list(
            nx.minimum_spanning_tree(grid44.to_networkx()).edges()
        )
        forest = ForestSolution(grid44, tree_edges)
        pruned = fast_pruning(inst, forest)
        assert pruned.solution.is_feasible(inst)
        for edge in pruned.solution.edges:
            reduced = ForestSolution(grid44, pruned.solution.edges - {edge})
            assert not reduced.is_feasible(inst)
