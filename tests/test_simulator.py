"""Tests for the generic node-program simulator."""

import pytest

from repro.congest import CongestRun
from repro.congest.simulator import EchoBroadcast, FloodMaxLeaderElection, NodeProgram, Simulator
from repro.exceptions import CongestViolationError, SimulationError
from repro.model import WeightedGraph


class TestSimulatorCore:
    def test_requires_program_per_node(self, path5):
        with pytest.raises(SimulationError):
            Simulator(path5, {0: FloodMaxLeaderElection()})

    def test_send_to_non_neighbor_rejected(self, path5):
        class Bad(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(4, "x")

            def on_round(self, ctx, inbox):
                ctx.halt()

        sim = Simulator(path5, {v: Bad() for v in path5.nodes})
        with pytest.raises(CongestViolationError):
            sim.start()

    def test_double_send_rejected(self, path5):
        class Chatty(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(1, "a")
                    ctx.send(1, "b")

            def on_round(self, ctx, inbox):
                ctx.halt()

        sim = Simulator(path5, {v: Chatty() for v in path5.nodes})
        with pytest.raises(CongestViolationError):
            sim.start()

    def test_rounds_charged_to_shared_ledger(self, path5):
        run = CongestRun(path5)
        programs = {v: FloodMaxLeaderElection() for v in path5.nodes}
        sim = Simulator(path5, programs, run=run)
        sim.run_to_completion()
        assert run.rounds > 0
        assert run.messages > 0

    def test_non_terminating_program_guard(self, path5):
        class Forever(NodeProgram):
            def on_start(self, ctx):
                for v in ctx.neighbors:
                    ctx.send(v, "ping")

            def on_round(self, ctx, inbox):
                for v in ctx.neighbors:
                    ctx.send(v, "ping")

        sim = Simulator(path5, {v: Forever() for v in path5.nodes})
        with pytest.raises(SimulationError):
            sim.run_to_completion(max_rounds=10)

    def test_edge_weight_accessor(self, triangle):
        seen = {}

        class Probe(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    seen["w"] = ctx.edge_weight(2)
                ctx.halt()

            def on_round(self, ctx, inbox):
                ctx.halt()

        Simulator(triangle, {v: Probe() for v in triangle.nodes}).start()
        assert seen["w"] == 4


class _Tag:
    """A hashable node with a controllable repr (adversarial for sorting)."""

    def __init__(self, label):
        self.label = label

    def __repr__(self):
        return self.label


class TestDeliveryOrder:
    @staticmethod
    def _inbox_order(graph, receiver, payloads):
        """Sender labels in ``receiver``'s round-1 inbox."""
        received = []

        class Sender(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id in payloads:
                    ctx.send(receiver, payloads[ctx.node_id])

            def on_round(self, ctx, inbox):
                ctx.halt()

        class Receiver(NodeProgram):
            def on_start(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                received.extend(sender for sender, _ in inbox)
                ctx.halt()

        programs = {
            v: Receiver() if v == receiver else Sender() for v in graph.nodes
        }
        Simulator(graph, programs).run_to_completion()
        return received

    def test_inbox_sorted_by_sender_not_payload(self, path5):
        star = WeightedGraph([0, 1, 2, 3], [(1, 0, 1), (2, 0, 1), (3, 0, 1)])
        for payloads in ({1: "z", 2: "a", 3: "m"}, {1: 0, 2: 99, 3: -5}):
            assert self._inbox_order(star, 0, payloads) == [1, 2, 3]

    def test_inbox_order_numeric_with_mixed_digit_ids(self):
        # repr-sorting would interleave two-digit IDs ("10" < "2" < "9");
        # the type-stable key sorts sender IDs numerically.
        senders = [2, 9, 10, 11]
        star = WeightedGraph([5] + senders, [(s, 5, 1) for s in senders])
        payloads = {s: "p" for s in senders}
        assert self._inbox_order(star, 5, payloads) == [2, 9, 10, 11]

    def test_order_independent_of_payload_contents(self):
        # Adversarial node reprs make the repr of the *whole* outbox item
        # diverge only inside the payload region: the old sort key
        # (repr of ((sender, receiver), payload)) flipped the delivery
        # order depending on the payload, the fixed key cannot.
        receiver = _Tag("r")
        plain = _Tag("a")
        tricky = _Tag("a, r), Z")
        graph = WeightedGraph(
            [receiver, plain, tricky],
            [(plain, receiver, 1), (tricky, receiver, 1)],
        )
        orders = [
            self._inbox_order(graph, receiver, {plain: payload, tricky: 0})
            for payload in (5, ["x"])
        ]
        assert orders[0] == orders[1]
        assert [s.label for s in orders[0]] == ["a", "a, r), Z"]


class TestMaxRoundsLimit:
    class _Forever(NodeProgram):
        def __init__(self):
            self.rounds_seen = 0

        def on_start(self, ctx):
            for v in ctx.neighbors:
                ctx.send(v, "ping")

        def on_round(self, ctx, inbox):
            self.rounds_seen += 1
            for v in ctx.neighbors:
                ctx.send(v, "ping")

    def test_limit_is_inclusive_not_exceeded(self, path5):
        programs = {v: self._Forever() for v in path5.nodes}
        sim = Simulator(path5, programs)
        with pytest.raises(SimulationError):
            sim.run_to_completion(max_rounds=5)
        # Exactly max_rounds rounds executed, never max_rounds + 1.
        assert max(p.rounds_seen for p in programs.values()) == 5

    def test_zero_limit_executes_no_rounds(self, path5):
        programs = {v: self._Forever() for v in path5.nodes}
        sim = Simulator(path5, programs)
        with pytest.raises(SimulationError):
            sim.run_to_completion(max_rounds=0)
        assert all(p.rounds_seen == 0 for p in programs.values())

    def test_quiescing_exactly_at_limit_succeeds(self, path5):
        class Relay(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(1, "tok")

            def on_round(self, ctx, inbox):
                if inbox and ctx.node_id < 4:
                    ctx.send(ctx.node_id + 1, "tok")

        programs = {v: Relay() for v in path5.nodes}
        rounds = Simulator(path5, programs).run_to_completion(max_rounds=4)
        assert rounds == 4


class TestFloodMax:
    def test_everyone_learns_max(self, grid44):
        programs = {v: FloodMaxLeaderElection() for v in grid44.nodes}
        sim = Simulator(grid44, programs)
        rounds = sim.run_to_completion()
        top = max(grid44.nodes)
        assert all(p.leader == top for p in programs.values())
        # Diameter-ish rounds plus patience slack.
        assert rounds <= grid44.unweighted_diameter() + 6

    def test_on_path(self, path5):
        programs = {v: FloodMaxLeaderElection() for v in path5.nodes}
        Simulator(path5, programs).run_to_completion()
        assert all(p.leader == 4 for p in programs.values())

    def test_two_digit_ids_beat_repr_order(self):
        # Regression: repr(9) > repr(10), so the old comparison elected
        # node 9 on any graph containing both. Integer IDs must elect 10.
        graph = WeightedGraph([9, 10], [(9, 10, 1)])
        programs = {v: FloodMaxLeaderElection() for v in graph.nodes}
        Simulator(graph, programs).run_to_completion()
        assert programs[9].leader == 10
        assert programs[10].leader == 10

    def test_wider_id_range_elects_true_max(self):
        nodes = [1, 5, 9, 10, 11, 30, 100]
        edges = [(a, b, 1) for a, b in zip(nodes, nodes[1:])]
        graph = WeightedGraph(nodes, edges)
        programs = {v: FloodMaxLeaderElection() for v in graph.nodes}
        Simulator(graph, programs).run_to_completion()
        assert all(p.leader == 100 for p in programs.values())


class TestEchoBroadcast:
    def test_all_informed_with_parents(self, grid33):
        root = 0
        programs = {v: EchoBroadcast(root) for v in grid33.nodes}
        Simulator(grid33, programs).run_to_completion()
        assert all(p.informed for p in programs.values())
        assert programs[root].parent is None
        for v, p in programs.items():
            if v != root:
                assert p.parent is not None

    def test_parent_pointers_reach_root(self, grid33):
        root = 4
        programs = {v: EchoBroadcast(root) for v in grid33.nodes}
        Simulator(grid33, programs).run_to_completion()
        for v in grid33.nodes:
            x, hops = v, 0
            while x != root:
                x = programs[x].parent
                hops += 1
                assert hops <= grid33.num_nodes

    def test_single_node_graph_completes_immediately(self):
        graph = WeightedGraph([0], [])
        program = EchoBroadcast(0)
        sim = Simulator(graph, {0: program})
        rounds = sim.run_to_completion()
        assert rounds == 0
        assert program.informed and program.done
        assert program.parent is None
        assert sim.all_halted

    def test_path_root_at_one_end(self, path5):
        programs = {v: EchoBroadcast(0) for v in path5.nodes}
        rounds = Simulator(path5, programs).run_to_completion()
        # Wave travels 4 hops out, echo travels 4 hops back.
        assert rounds == 8
        assert all(p.informed and p.done for p in programs.values())
        # The parent pointers form the path back to the root.
        assert [programs[v].parent for v in path5.nodes] == [None, 0, 1, 2, 3]
