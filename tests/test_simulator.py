"""Tests for the generic node-program simulator."""

import pytest

from repro.congest import CongestRun
from repro.congest.simulator import (
    Context,
    EchoBroadcast,
    FloodMaxLeaderElection,
    NodeProgram,
    Simulator,
)
from repro.exceptions import CongestViolationError, SimulationError
from repro.model import WeightedGraph


class TestSimulatorCore:
    def test_requires_program_per_node(self, path5):
        with pytest.raises(SimulationError):
            Simulator(path5, {0: FloodMaxLeaderElection()})

    def test_send_to_non_neighbor_rejected(self, path5):
        class Bad(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(4, "x")

            def on_round(self, ctx, inbox):
                ctx.halt()

        sim = Simulator(path5, {v: Bad() for v in path5.nodes})
        with pytest.raises(CongestViolationError):
            sim.start()

    def test_double_send_rejected(self, path5):
        class Chatty(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(1, "a")
                    ctx.send(1, "b")

            def on_round(self, ctx, inbox):
                ctx.halt()

        sim = Simulator(path5, {v: Chatty() for v in path5.nodes})
        with pytest.raises(CongestViolationError):
            sim.start()

    def test_rounds_charged_to_shared_ledger(self, path5):
        run = CongestRun(path5)
        programs = {v: FloodMaxLeaderElection() for v in path5.nodes}
        sim = Simulator(path5, programs, run=run)
        sim.run_to_completion()
        assert run.rounds > 0
        assert run.messages > 0

    def test_non_terminating_program_guard(self, path5):
        class Forever(NodeProgram):
            def on_start(self, ctx):
                for v in ctx.neighbors:
                    ctx.send(v, "ping")

            def on_round(self, ctx, inbox):
                for v in ctx.neighbors:
                    ctx.send(v, "ping")

        sim = Simulator(path5, {v: Forever() for v in path5.nodes})
        with pytest.raises(SimulationError):
            sim.run_to_completion(max_rounds=10)

    def test_edge_weight_accessor(self, triangle):
        seen = {}

        class Probe(NodeProgram):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    seen["w"] = ctx.edge_weight(2)
                ctx.halt()

            def on_round(self, ctx, inbox):
                ctx.halt()

        Simulator(triangle, {v: Probe() for v in triangle.nodes}).start()
        assert seen["w"] == 4


class TestFloodMax:
    def test_everyone_learns_max(self, grid44):
        programs = {v: FloodMaxLeaderElection() for v in grid44.nodes}
        sim = Simulator(grid44, programs)
        rounds = sim.run_to_completion()
        top = max(grid44.nodes, key=repr)
        assert all(p.leader == top for p in programs.values())
        # Diameter-ish rounds plus patience slack.
        assert rounds <= grid44.unweighted_diameter() + 6

    def test_on_path(self, path5):
        programs = {v: FloodMaxLeaderElection() for v in path5.nodes}
        Simulator(path5, programs).run_to_completion()
        assert all(p.leader == 4 for p in programs.values())


class TestEchoBroadcast:
    def test_all_informed_with_parents(self, grid33):
        root = 0
        programs = {v: EchoBroadcast(root) for v in grid33.nodes}
        Simulator(grid33, programs).run_to_completion()
        assert all(p.informed for p in programs.values())
        assert programs[root].parent is None
        for v, p in programs.items():
            if v != root:
                assert p.parent is not None

    def test_parent_pointers_reach_root(self, grid33):
        root = 4
        programs = {v: EchoBroadcast(root) for v in grid33.nodes}
        Simulator(grid33, programs).run_to_completion()
        for v in grid33.nodes:
            x, hops = v, 0
            while x != root:
                x = programs[x].parent
                hops += 1
                assert hops <= grid33.num_nodes
